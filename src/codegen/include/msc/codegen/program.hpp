#ifndef MSC_CODEGEN_PROGRAM_HPP
#define MSC_CODEGEN_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "msc/core/automaton.hpp"
#include "msc/csi/csi.hpp"
#include "msc/hash/multiway.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"

namespace msc::codegen {

/// One SIMD control-unit step inside a meta state's code. Every op carries
/// a guard: the set of MIMD states whose PEs are enabled for it (the
/// paper's `if (pc & BIT(...))` blocks in Listing 5).
enum class SOpKind : std::uint8_t {
  Data,       ///< execute `instr` on enabled PEs
  SetPc,      ///< enabled PEs: next pc = a (single exit arc)
  CondSetPc,  ///< enabled PEs: pop cond; next pc = cond ? a : b (JumpF)
  HaltPc,     ///< enabled PEs: next pc = none (process ends, PE freed)
  SpawnPc,    ///< §3.2.5: allocate a free PE per enabled PE with pc=a
              ///  (zeroed memory); the enabled original continues at b
};

struct SOp {
  SOpKind kind = SOpKind::Data;
  DynBitset guard;
  ir::Instr instr{ir::Opcode::PushI, {}};
  ir::StateId a = ir::kNoState;
  ir::StateId b = ir::kNoState;
  /// Sorted members of `guard`, precomputed by generate() so the
  /// occupancy-indexed engine iterates per-state PE lists instead of
  /// testing every PE against the guard bitset.
  std::vector<ir::StateId> guard_states;
  /// True when this op's guard differs from the previous op's in the same
  /// meta state — the enable-mask reprogramming boundaries the machines
  /// charge `cost.guard_switch` for (first op of a state is always true).
  bool new_guard = true;
};

/// How execution leaves a meta state (§3.2.1–3.2.4).
enum class TransKind : std::uint8_t {
  Exit,      ///< no exit arc: return to the "operating system"
  Direct,    ///< single exit arc: plain goto
  Multiway,  ///< global-or the pcs, hash, jump through the table
};

struct MetaCode {
  core::MetaId id = core::kNoMeta;
  DynBitset members;
  std::vector<SOp> code;

  TransKind trans = TransKind::Exit;
  core::MetaId direct_target = core::kNoMeta;
  /// §4.2 straightening: the direct target is laid out immediately after
  /// this state, so the transition is a free fall-through, not a goto.
  bool fallthrough = false;
  /// Multiway: hashed switch over folded aggregate-pc keys.
  hash::HashedSwitch sw;
  std::vector<core::MetaId> case_targets;   ///< case idx → meta state
  std::vector<DynBitset> case_keys;         ///< exact keys (fold verification)
  /// Compressed fallback when no key matches (§2.5 unconditional arc).
  core::MetaId fallback = core::kNoMeta;
  /// Whether the transition needs the aggregate pc (global-or) at all.
  bool needs_apc = false;

  /// CSI bookkeeping for the benches.
  std::int64_t serialized_cost = 0;
  std::int64_t induced_cost = 0;
  std::int64_t csi_lower_bound = 0;
};

/// Executable SIMD coding of a meta-state automaton. Holds everything the
/// SIMD machine needs: per-meta-state guarded code and transition tables,
/// plus the source-graph barrier data for §3.2.4 masking and the member
/// index for PaperPrune rescue transitions.
struct SimdProgram {
  std::vector<MetaCode> states;
  core::MetaId start = core::kNoMeta;
  DynBitset barriers;
  core::BarrierMode barrier_mode = core::BarrierMode::TrackOccupancy;
  bool compressed = false;
  std::size_t mimd_states = 0;  ///< source graph size (guard bit width)

  /// members → meta id (rescue transitions, tests).
  std::unordered_map<DynBitset, core::MetaId, DynBitsetHash> index;

  /// §3.2.4 masking applied to a runtime aggregate pc.
  DynBitset transition_key(const DynBitset& apc) const;

  /// Static cycles the control unit charges for leaving `mc` once.
  std::int64_t transition_cost(const MetaCode& mc, const ir::CostModel& cost) const;
};

struct CodegenOptions {
  /// §3.1: run common subexpression induction per meta state. Off = naive
  /// serialization (the ablation baseline).
  bool use_csi = true;
  csi::Algorithm csi_algorithm = csi::Algorithm::Best;
  hash::SearchOptions hash_options;
};

/// Generate the SIMD coding of `automaton` over its (possibly time-split)
/// source graph.
SimdProgram generate(const core::MetaAutomaton& automaton,
                     const ir::StateGraph& graph, const ir::CostModel& cost,
                     const CodegenOptions& options = {});

/// Render the program as MasPar-MPL-style text in the shape of the
/// paper's Listing 5 (ms_* labels, BIT() guards, globalor + hashed switch).
std::string to_mpl(const SimdProgram& program, const ir::StateGraph& graph);

}  // namespace msc::codegen

#endif  // MSC_CODEGEN_PROGRAM_HPP
