#ifndef MSC_CODEGEN_TRANSLATE_HPP
#define MSC_CODEGEN_TRANSLATE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/ir/cost.hpp"

namespace msc::codegen {

/// Host opcodes of the translated stream executed by the codegen engine
/// (mimd::SimdEngine::Codegen). The interpretive engines dispatch one SOp
/// per broadcast; translation collapses common shapes the compiler emits —
/// the immediate-operand fusions below are the SOp-level analogue of the
/// fold/copy-propagation pass in qemu's tcg/optimize.c.
enum class TOpKind : std::uint8_t {
  Exec,       ///< generic fallback: ir::exec_instr(instr)
  PushI,      ///< materialized int constant
  PushF,      ///< materialized float constant
  LdLImm,     ///< fused PushI;LdL — push local[imm]
  StLImm,     ///< fused PushI;StL — local[imm] = pop
  LdMImm,     ///< fused PushI;LdM — push mono[imm]
  StMImm,     ///< fused PushI;StM — mono[imm] = pop
  BinImm,     ///< fused PushI/PushF;<binop> — push eval_binary(op, pop, imm)
  SetPc,      ///< enabled PEs: next pc = a
  CondSetPc,  ///< enabled PEs: pop cond; next pc = cond ? a : b
  HaltPc,     ///< enabled PEs: next pc = none
  SpawnPc,    ///< §3.2.5 allocate a free PE at a; original continues at b
};

struct TOp {
  TOpKind kind = TOpKind::Exec;
  /// Exec: the full instruction; *Imm: opcode + immediate operand;
  /// PushI/PushF: the (possibly folded) constant.
  ir::Instr instr{ir::Opcode::PushI, {}};
  ir::StateId a = ir::kNoState;
  ir::StateId b = ir::kNoState;
};

/// One maximal same-guard run of a meta state's SOps. Guard resolution,
/// enable-mask accounting, and the cycle arithmetic all happen once per
/// group instead of once per op: the simulated-cost aggregates below are
/// precomputed from the ORIGINAL ops so SimdStats stay bit-identical to
/// the interpretive engines no matter how hard the host stream folded.
struct TGroup {
  /// Sorted MIMD states of the shared guard (gather key into occ_[]).
  std::vector<ir::StateId> guard_states;
  /// Folded/fused host stream (may be empty when everything folded away).
  std::vector<TOp> code;
  /// Σ op-cost over the original ops (× alive ⇒ offered, × enabled ⇒ busy).
  std::int64_t cost_sum = 0;
  /// cost.guard_switch + cost_sum: the control-unit charge per visit.
  std::int64_t control_cost = 0;
};

struct TransState {
  std::vector<TGroup> groups;
};

/// The translated form of one SimdProgram under one CostModel: per meta
/// state, its guarded code as fused groups. Everything here is
/// RunConfig-independent (costs are per-PE factors applied at runtime, and
/// memory bounds are checked against the live config), so one entry serves
/// every nprocs/memory-size combination — which is what makes the cache
/// worth keeping.
struct TransProgram {
  std::vector<TransState> states;
  std::int64_t source_ops = 0;  ///< SOps in (Data + pc writes)
  std::int64_t host_ops = 0;    ///< TOps out (after folding/fusing)
};

/// Hit/miss counters of the process-global translation cache (also
/// published as codegen.trans_cache_* metrics).
struct TranslationCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;
};

/// Translate `prog` under `cost`, through the process-global LRU cache
/// keyed by a structural hash of the program body plus the cost model:
/// repeat runs of the same automaton (any RunConfig) skip translation.
std::shared_ptr<const TransProgram> translate(const SimdProgram& prog,
                                              const ir::CostModel& cost);

TranslationCacheStats translation_cache_stats();
/// Drop all cached translations and zero the counters (tests).
void translation_cache_clear();

}  // namespace msc::codegen

#endif  // MSC_CODEGEN_TRANSLATE_HPP
