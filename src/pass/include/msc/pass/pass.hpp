#ifndef MSC_PASS_PASS_HPP
#define MSC_PASS_PASS_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/core/convert.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"
#include "msc/support/telemetry.hpp"

namespace msc::telemetry {
class TraceSink;
}

namespace msc::pass {

/// Thrown on pipeline-construction errors (unknown pass name, duplicate
/// pass, invariant-violating order) and by --verify-each when a pass
/// leaves the intermediate program in an invalid state.
class PipelineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The unit every pass transforms: the toolchain's whole intermediate
/// state, from the compiled MIMD state graph through the meta-state
/// automaton to the generated SIMD program. A stage fills in the optional
/// it owns; later stages read it.
struct PipelineState {
  ir::StateGraph graph;      ///< mutated in place by IR passes
  ir::CostModel cost;
  /// Engine-level conversion knobs (threads, memoize, barrier_mode,
  /// max_meta_states). The stage flags inside (compress/time_split/
  /// subsume/straighten) are owned by the pipeline: config passes set
  /// them, the convert pass consumes them — callers should leave them at
  /// their defaults and express the stages as pass names instead.
  core::ConvertOptions options;
  /// Convert-pass policy: on ExplosionError, retry compressed (the
  /// driver-level adaptive behavior; DESIGN.md §4).
  bool adaptive = false;
  codegen::CodegenOptions cgopts;
  /// Chrome-trace sink shared by the whole pipeline run (null = tracing
  /// off). The PassManager opens one wall-clock span per pass; passes may
  /// additionally emit child spans (the convert pass emits its per-phase
  /// breakdown). Never changes pass behaviour.
  telemetry::TraceSink* trace_sink = nullptr;
  std::optional<core::ConvertResult> conversion;   ///< set by `convert`
  std::optional<codegen::SimdProgram> prog;        ///< set by `codegen`
};

/// Pipeline position class; declares each pass's ordering invariants.
/// IR passes mutate `graph` and must precede the conversion; Config
/// passes parameterize the conversion and must precede it; exactly one
/// Convert pass may appear; Automaton and Codegen passes require a
/// conversion to exist.
enum class Stage : std::uint8_t { IR, Config, Convert, Automaton, Codegen };
const char* to_string(Stage stage);

/// Pass-specific counters surfaced in the telemetry record (cache hits,
/// blocks removed, fall-throughs created, ...).
using Counters = std::vector<std::pair<std::string, std::int64_t>>;

struct Pass {
  std::string name;
  std::string description;
  Stage stage = Stage::IR;
  /// Member of the default pipeline (what runs when no explicit
  /// --pass-pipeline is given and no flag enables it).
  bool default_on = false;
  std::function<void(PipelineState&, Counters&)> run;
};

/// The global pass registry. Built-ins are registered on first use;
/// register_pass() adds a custom pass (tests, future plugins). Returns
/// false when the name is already taken. Not thread-safe: register before
/// spawning pipeline runs.
const std::vector<Pass>& registered_passes();
bool register_pass(Pass pass);
const Pass* find_pass(const std::string& name);

/// Names of the default_on built-ins, in canonical (registration) order:
/// simplify, peephole, convert, subsume, straighten.
std::vector<std::string> default_pipeline();

struct ManagerOptions {
  /// Pass names in execution order; empty = default_pipeline().
  std::vector<std::string> pipeline;
  /// Names removed from the pipeline after resolution (--disable-pass).
  std::vector<std::string> disabled;
  /// Run the structural invariant checkers (ir::StateGraph::validate,
  /// core::MetaAutomaton::validate) after every pass, throwing
  /// PipelineError naming the offending pass — a miscompiling pass is
  /// pinpointed at its boundary instead of surfacing downstream.
  bool verify_each = false;
};

/// Resolves, validates, and runs a pass pipeline with per-pass
/// instrumentation. Construction throws PipelineError on unknown names,
/// duplicates, or stage-order violations.
class PassManager {
 public:
  explicit PassManager(ManagerOptions options);

  const std::vector<Pass>& passes() const { return passes_; }
  std::vector<std::string> names() const;
  bool contains(const std::string& name) const;

  /// Run every pass over `state`, sampling metrics and wall time at each
  /// boundary. Exceptions from passes propagate (ExplosionError,
  /// PipelineError from verification, ...).
  telemetry::PipelineTrace run(PipelineState& state) const;

 private:
  void verify(const std::string& pass_name, const PipelineState& state) const;

  ManagerOptions options_;
  std::vector<Pass> passes_;  ///< resolved copies, in execution order
};

/// Convenience for callers that already hold a compiled state graph (the
/// fuzzer's differential matrix): run a conversion-stage pipeline (e.g.
/// {"convert", "subsume", "straighten"}, optionally prefixed with config
/// passes) over a copy of `graph` and return the conversion. `base`
/// supplies the engine-level knobs; its stage flags are ignored — the
/// pipeline is the source of truth. Throws PipelineError when the
/// pipeline contains no convert pass.
core::ConvertResult run_conversion_pipeline(
    const ir::StateGraph& graph, const ir::CostModel& cost,
    const std::vector<std::string>& pipeline, const core::ConvertOptions& base,
    bool adaptive = false, telemetry::PipelineTrace* trace_out = nullptr);

}  // namespace msc::pass

#endif  // MSC_PASS_PASS_HPP
