// Pipeline resolution, invariant-order validation, and the instrumented
// run loop.
#include <algorithm>
#include <chrono>

#include "msc/pass/pass.hpp"
#include "msc/support/metrics.hpp"
#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"

namespace msc::pass {

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string known_names() {
  std::vector<std::string> names;
  for (const Pass& p : registered_passes()) names.push_back(p.name);
  return join(names, ", ");
}

telemetry::Metrics snapshot(const PipelineState& st) {
  telemetry::Metrics m;
  m.mimd_states = static_cast<std::int64_t>(
      st.conversion ? st.conversion->graph.size() : st.graph.size());
  if (st.conversion) {
    m.meta_states =
        static_cast<std::int64_t>(st.conversion->automaton.num_states());
    m.meta_arcs =
        static_cast<std::int64_t>(st.conversion->automaton.num_arcs());
  }
  return m;
}

}  // namespace

PassManager::PassManager(ManagerOptions options) : options_(std::move(options)) {
  std::vector<std::string> names =
      options_.pipeline.empty() ? default_pipeline() : options_.pipeline;

  // --disable-pass names must exist (catching typos beats silence) and are
  // removed from the resolved list.
  for (const std::string& off : options_.disabled) {
    if (!find_pass(off))
      throw PipelineError(cat("cannot disable unknown pass '", off,
                              "' (registered: ", known_names(), ")"));
    names.erase(std::remove(names.begin(), names.end(), off), names.end());
  }
  if (names.empty()) throw PipelineError("empty pass pipeline");

  for (const std::string& name : names) {
    const Pass* p = find_pass(name);
    if (!p)
      throw PipelineError(cat("unknown pass '", name,
                              "' (registered: ", known_names(), ")"));
    for (const Pass& seen : passes_)
      if (seen.name == name)
        throw PipelineError(cat("pass '", name, "' appears twice"));
    passes_.push_back(*p);
  }

  // Declared stage invariants: IR and Config passes precede the (single)
  // convert pass; Automaton/Codegen passes follow it.
  bool converted = false;
  bool has_convert = false;
  for (const Pass& p : passes_) has_convert |= p.stage == Stage::Convert;
  for (const Pass& p : passes_) {
    switch (p.stage) {
      case Stage::IR:
        if (converted)
          throw PipelineError(cat("IR pass '", p.name,
                                  "' after the conversion stage: it could no "
                                  "longer affect the automaton"));
        break;
      case Stage::Config:
        if (converted)
          throw PipelineError(cat("config pass '", p.name,
                                  "' after the conversion stage it is meant "
                                  "to parameterize"));
        if (!has_convert)
          throw PipelineError(cat("config pass '", p.name,
                                  "' without a convert pass to configure"));
        break;
      case Stage::Convert:
        if (converted)
          throw PipelineError("pipeline contains more than one convert pass");
        converted = true;
        break;
      case Stage::Automaton:
      case Stage::Codegen:
        if (!converted)
          throw PipelineError(cat(to_string(p.stage), " pass '", p.name,
                                  "' before any convert pass: there is no "
                                  "automaton to transform"));
        break;
    }
  }
}

std::vector<std::string> PassManager::names() const {
  std::vector<std::string> out;
  for (const Pass& p : passes_) out.push_back(p.name);
  return out;
}

bool PassManager::contains(const std::string& name) const {
  for (const Pass& p : passes_)
    if (p.name == name) return true;
  return false;
}

void PassManager::verify(const std::string& pass_name,
                         const PipelineState& state) const {
  std::vector<std::string> problems = state.graph.validate();
  if (state.conversion) {
    std::vector<std::string> aut =
        state.conversion->automaton.validate(state.conversion->graph);
    problems.insert(problems.end(), aut.begin(), aut.end());
  }
  if (!problems.empty())
    throw PipelineError(cat("invariant violation after pass '", pass_name,
                            "': ", join(problems, "; ")));
}

telemetry::PipelineTrace PassManager::run(PipelineState& state) const {
  telemetry::PipelineTrace trace;
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  static telemetry::Counter& pass_runs = reg.counter("pass.runs");
  static telemetry::Counter& pipeline_runs = reg.counter("pass.pipelines");
  static telemetry::Histogram& pass_us = reg.histogram(
      "pass.seconds_us", telemetry::Histogram::pow2_bounds(24));
  const Clock::time_point t_total = Clock::now();
  for (const Pass& pass : passes_) {
    telemetry::PassRecord rec;
    rec.name = pass.name;
    rec.before = snapshot(state);
    telemetry::ScopedSpan span(state.trace_sink, pass.name, "pass");
    const Clock::time_point t0 = Clock::now();
    pass.run(state, rec.counters);
    rec.seconds = since(t0);
    rec.after = snapshot(state);
    span.arg("meta_states_after", rec.after.meta_states);
    span.arg("mimd_states_after", rec.after.mimd_states);
    pass_runs.add();
    pass_us.record(static_cast<std::int64_t>(rec.seconds * 1e6));
    // Per-pass cumulative wall time; names come from a closed registry, so
    // the lookup cost (a map find under an uncontended mutex, per pass
    // execution) is negligible next to the pass itself.
    reg.counter(cat("pass.", pass.name, ".us"))
        .add(static_cast<std::int64_t>(rec.seconds * 1e6));
    trace.passes.push_back(std::move(rec));
    if (options_.verify_each) verify(pass.name, state);
  }
  trace.total_seconds = since(t_total);
  pipeline_runs.add();
  return trace;
}

core::ConvertResult run_conversion_pipeline(
    const ir::StateGraph& graph, const ir::CostModel& cost,
    const std::vector<std::string>& pipeline, const core::ConvertOptions& base,
    bool adaptive, telemetry::PipelineTrace* trace_out) {
  ManagerOptions mo;
  mo.pipeline = pipeline;
  PassManager pm(std::move(mo));
  PipelineState st;
  st.graph = graph;
  st.cost = cost;
  st.options = base;
  st.options.compress = false;  // the pipeline is the source of truth
  st.options.time_split = false;
  st.adaptive = adaptive;
  telemetry::PipelineTrace trace = pm.run(st);
  if (trace_out) *trace_out = std::move(trace);
  if (!st.conversion)
    throw PipelineError("pipeline contains no convert pass");
  return std::move(*st.conversion);
}

}  // namespace msc::pass
