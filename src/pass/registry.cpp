// The built-in pass registry: every stage of the toolchain, registered by
// name so pipelines can be printed, reordered, disabled, and timed.
#include <chrono>

#include "msc/codegen/program.hpp"
#include "msc/core/dme.hpp"
#include "msc/core/straighten.hpp"
#include "msc/core/subsume.hpp"
#include "msc/core/time_split.hpp"
#include "msc/ir/passes.hpp"
#include "msc/ir/peephole.hpp"
#include "msc/pass/pass.hpp"
#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"

namespace msc::pass {

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

core::ConvertResult& conversion_of(PipelineState& st, const char* pass) {
  if (!st.conversion)
    throw PipelineError(
        cat("pass '", pass, "' requires a conversion but none has run"));
  return *st.conversion;
}

void refresh_counts(core::ConvertResult& conv) {
  conv.stats.meta_states = conv.automaton.num_states();
  conv.stats.arcs = conv.automaton.num_arcs();
}

void run_convert(PipelineState& st, Counters& counters) {
  core::ConvertOptions o = st.options;
  // Subsumption and straightening are pipeline passes of their own; the
  // engine-internal variants stay off so each boundary is observable.
  o.subsume = false;
  o.straighten = false;
  const std::int64_t t_start = st.trace_sink ? st.trace_sink->now_us() : 0;
  try {
    st.conversion = core::meta_state_convert(st.graph, st.cost, o);
  } catch (const core::ExplosionError&) {
    if (!st.adaptive) throw;
    // §1.2 fallback policy: rerun under §2.5 compression, which is bounded
    // by the reachable unions. Record the switch so later passes (and the
    // caller) see which mode actually ran.
    o.compress = true;
    o.barrier_mode = core::BarrierMode::TrackOccupancy;
    st.options.compress = true;
    st.options.barrier_mode = core::BarrierMode::TrackOccupancy;
    st.conversion = core::meta_state_convert(st.graph, st.cost, o);
  }
  const core::ConvertStats& s = st.conversion->stats;
  if (st.trace_sink) {
    // Phase child spans inside the pass's span. The engine accumulates
    // phase seconds rather than timestamps (phases interleave across §2.4
    // restart rounds), so render them back-to-back from the pass start —
    // the proportions are what the trace is for.
    std::int64_t t = t_start;
    const auto phase = [&](const char* name, double seconds) {
      const auto us = static_cast<std::int64_t>(seconds * 1e6);
      st.trace_sink->complete(name, "convert-phase",
                              telemetry::TraceSink::kToolchainPid, /*tid=*/1,
                              t, us);
      t += us;
    };
    phase("expand", s.expand_seconds);
    phase("merge", s.merge_seconds);
  }
  counters = {{"reach_calls", static_cast<std::int64_t>(s.reach_calls)},
              {"restarts", s.restarts},
              {"splits_performed", s.splits_performed},
              {"cache_hits", static_cast<std::int64_t>(s.cache_hits)},
              {"cache_misses", static_cast<std::int64_t>(s.cache_misses)},
              {"cache_invalidated",
               static_cast<std::int64_t>(s.cache_invalidated)},
              {"batches", static_cast<std::int64_t>(s.batches)},
              {"threads", s.threads_used}};
}

std::vector<Pass> builtin_passes() {
  std::vector<Pass> v;
  v.push_back(
      {"simplify",
       "fold trivial branches, bypass empty blocks, merge chains, drop "
       "unreachable MIMD states (§2.1/§4.2)",
       Stage::IR, /*default_on=*/true,
       [](PipelineState& st, Counters& c) {
         const std::int64_t before = static_cast<std::int64_t>(st.graph.size());
         ir::simplify(st.graph);
         c.emplace_back("blocks_removed",
                        before - static_cast<std::int64_t>(st.graph.size()));
       }});
  v.push_back({"peephole",
               "local strength reduction on block bodies (constant folding, "
               "dead values, pop fusion)",
               Stage::IR, /*default_on=*/true,
               [](PipelineState& st, Counters& c) {
                 c.emplace_back(
                     "instrs_removed",
                     static_cast<std::int64_t>(ir::peephole(st.graph)));
               }});
  v.push_back({"compress",
               "§2.5 meta-state compression: assume both successors of every "
               "two-exit state are taken",
               Stage::Config, /*default_on=*/false,
               [](PipelineState& st, Counters&) {
                 st.options.compress = true;
               }});
  v.push_back({"time-split",
               "§2.4 MIMD-state time splitting: split cost-imbalanced members "
               "and restart conversion",
               Stage::Config, /*default_on=*/false,
               [](PipelineState& st, Counters&) {
                 st.options.time_split = true;
               }});
  v.push_back({"convert",
               "§2.3 meta-state conversion: enumerate reachable aggregates "
               "into the automaton",
               Stage::Convert, /*default_on=*/true, run_convert});
  v.push_back({"subsume",
               "Fig. 5 reduction: merge compressed meta states into their "
               "strict supersets (no-op on base-mode automata)",
               Stage::Automaton, /*default_on=*/true,
               [](PipelineState& st, Counters& c) {
                 core::ConvertResult& conv = conversion_of(st, "subsume");
                 std::int64_t merged = 0;
                 if (conv.automaton.compressed) {
                   const Clock::time_point t0 = Clock::now();
                   merged = static_cast<std::int64_t>(
                       core::subsume_automaton(conv.automaton));
                   conv.stats.subsume_seconds += since(t0);
                   refresh_counts(conv);
                 }
                 c.emplace_back("states_merged", merged);
               }});
  v.push_back({"dme",
               "dead-meta-state and duplicate-arc elimination (cleanup for "
               "custom pass orders)",
               Stage::Automaton, /*default_on=*/false,
               [](PipelineState& st, Counters& c) {
                 core::ConvertResult& conv = conversion_of(st, "dme");
                 const core::DmeResult r =
                     core::eliminate_dead_states(conv.automaton);
                 refresh_counts(conv);
                 c.emplace_back("states_removed",
                                static_cast<std::int64_t>(r.states_removed));
                 c.emplace_back("arcs_removed",
                                static_cast<std::int64_t>(r.arcs_removed));
               }});
  v.push_back({"straighten",
               "§4.2 layout: order single-successor chains consecutively so "
               "codegen emits fall-throughs",
               Stage::Automaton, /*default_on=*/true,
               [](PipelineState& st, Counters& c) {
                 core::ConvertResult& conv = conversion_of(st, "straighten");
                 const Clock::time_point t0 = Clock::now();
                 const std::size_t pairs = core::straighten(conv.automaton);
                 conv.stats.straighten_seconds += since(t0);
                 c.emplace_back("fallthrough_pairs",
                                static_cast<std::int64_t>(pairs));
               }});
  v.push_back({"codegen",
               "guarded SIMD coding of the automaton (§3.1 CSI + §3.2 "
               "transition logic)",
               Stage::Codegen, /*default_on=*/false,
               [](PipelineState& st, Counters& c) {
                 core::ConvertResult& conv = conversion_of(st, "codegen");
                 st.prog = codegen::generate(conv.automaton, conv.graph,
                                             st.cost, st.cgopts);
                 std::int64_t sops = 0;
                 for (const auto& ms : st.prog->states)
                   sops += static_cast<std::int64_t>(ms.code.size());
                 c.emplace_back("sops", sops);
               }});
  return v;
}

std::vector<Pass>& mutable_registry() {
  static std::vector<Pass> passes = builtin_passes();
  return passes;
}

}  // namespace

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::IR: return "ir";
    case Stage::Config: return "config";
    case Stage::Convert: return "convert";
    case Stage::Automaton: return "automaton";
    case Stage::Codegen: return "codegen";
  }
  return "unknown";
}

const std::vector<Pass>& registered_passes() { return mutable_registry(); }

bool register_pass(Pass pass) {
  if (!pass.run || pass.name.empty()) return false;
  for (const Pass& p : mutable_registry())
    if (p.name == pass.name) return false;
  mutable_registry().push_back(std::move(pass));
  return true;
}

const Pass* find_pass(const std::string& name) {
  for (const Pass& p : registered_passes())
    if (p.name == name) return &p;
  return nullptr;
}

std::vector<std::string> default_pipeline() {
  std::vector<std::string> names;
  for (const Pass& p : registered_passes())
    if (p.default_on) names.push_back(p.name);
  return names;
}

}  // namespace msc::pass
