#include "msc/workload/generator.hpp"

#include <algorithm>
#include <cctype>

#include "msc/support/str.hpp"

namespace msc::workload {

namespace {

std::string var_name(int idx) { return cat("v", idx); }

// ---------------------------------------------------------------- grammar

std::string int_expr(Rng& rng, const GenOptions& opts, int depth) {
  if (depth <= 0 || rng.chance(1, 3)) {
    switch (rng.next_below(4)) {
      case 0: return var_name(static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(opts.num_vars))));
      case 1: return std::to_string(rng.next_range(0, 17));
      case 2: return "procid()";
      default: return "x";
    }
  }
  static const char* ops[] = {"+", "-", "*", "%", "&", "|",
                              "^", "<", "<=", "==", "!=", ">>"};
  const char* op = ops[rng.next_below(12)];
  std::string lhs = int_expr(rng, opts, depth - 1);
  std::string rhs = int_expr(rng, opts, depth - 1);
  // Keep shift counts tiny so values stay interesting.
  if (std::string(op) == ">>") rhs = std::to_string(rng.next_range(0, 5));
  return cat("(", lhs, " ", op, " ", rhs, ")");
}

int rand_var(Rng& rng, const GenOptions& opts) {
  return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opts.num_vars)));
}

GenStmt make_assign(Rng& rng, const GenOptions& opts) {
  GenStmt s;
  s.kind = GenStmt::Kind::Assign;
  s.var = rand_var(rng, opts);
  s.expr = int_expr(rng, opts, opts.expr_depth);
  return s;
}

GenStmt gen_stmt(Rng& rng, const GenOptions& opts, int depth) {
  std::uint64_t pick = rng.next_below(10);
  if (depth >= opts.max_depth) pick = rng.next_below(4);  // leaves only
  switch (pick) {
    case 0:
    case 1:
      return make_assign(rng, opts);
    case 2: {
      static const char* kCompound[] = {"+=", "-=", "*=", "^=", "|=", "&="};
      GenStmt s;
      s.kind = GenStmt::Kind::Compound;
      s.var = rand_var(rng, opts);
      s.op = kCompound[rng.next_below(6)];
      s.expr = int_expr(rng, opts, opts.expr_depth - 1);
      return s;
    }
    case 3: {
      GenStmt s;
      s.kind = GenStmt::Kind::IncDec;
      s.var = rand_var(rng, opts);
      s.op = rng.chance(1, 2) ? "++" : "--";
      return s;
    }
    case 4: {
      if (!opts.allow_float) return make_assign(rng, opts);
      GenStmt s;
      s.kind = GenStmt::Kind::FloatOp;
      s.expr = int_expr(rng, opts, 1);
      return s;
    }
    case 5: {
      if (opts.allow_spawn && rng.chance(1, 3)) {
        GenStmt s;
        s.kind = GenStmt::Kind::Spawn;
        s.body.push_back(make_assign(rng, opts));
        return s;
      }
      if (opts.allow_barrier && rng.chance(1, 2)) {
        GenStmt s;
        s.kind = GenStmt::Kind::Wait;
        return s;
      }
      return make_assign(rng, opts);
    }
    case 6:
    case 7: {  // divergent if/else
      GenStmt s;
      s.kind = GenStmt::Kind::If;
      s.expr = int_expr(rng, opts, 2);
      int n = static_cast<int>(rng.next_range(1, 2));
      for (int i = 0; i < n; ++i) s.body.push_back(gen_stmt(rng, opts, depth + 1));
      if (rng.chance(2, 3)) {
        n = static_cast<int>(rng.next_range(1, 2));
        for (int i = 0; i < n; ++i)
          s.else_body.push_back(gen_stmt(rng, opts, depth + 1));
      }
      return s;
    }
    default: {  // bounded counted loop (always terminates, structurally)
      if (!opts.allow_loops) return make_assign(rng, opts);
      GenStmt s;
      s.kind = GenStmt::Kind::Loop;
      s.expr = int_expr(rng, opts, 1);
      s.trips = opts.loop_max_trips;
      int n = static_cast<int>(rng.next_range(1, 2));
      for (int i = 0; i < n; ++i) s.body.push_back(gen_stmt(rng, opts, depth + 1));
      if (rng.chance(1, 4)) {
        s.has_break = true;
        s.break_expr = int_expr(rng, opts, 1);
      }
      return s;
    }
  }
}

// --------------------------------------------------------------- rendering

struct Renderer {
  std::string out;
  int counter_id = 0;

  void stmt(const GenStmt& s, int depth) {
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (s.kind) {
      case GenStmt::Kind::Assign:
        out += cat(pad, var_name(s.var), " = ", s.expr, ";\n");
        return;
      case GenStmt::Kind::Compound:
        out += cat(pad, var_name(s.var), " ", s.op, " ", s.expr, ";\n");
        return;
      case GenStmt::Kind::IncDec:
        out += s.op == "++" ? cat(pad, var_name(s.var), "++;\n")
                            : cat(pad, "--", var_name(s.var), ";\n");
        return;
      case GenStmt::Kind::FloatOp:
        out += cat(pad, "g = g * 0.5 + ", s.expr, ";\n");
        return;
      case GenStmt::Kind::Wait:
        out += cat(pad, "wait;\n");
        return;
      case GenStmt::Kind::If: {
        out += cat(pad, "if (", s.expr, ") {\n");
        for (const GenStmt& c : s.body) stmt(c, depth + 1);
        if (!s.else_body.empty()) {
          out += cat(pad, "} else {\n");
          for (const GenStmt& c : s.else_body) stmt(c, depth + 1);
        }
        out += cat(pad, "}\n");
        return;
      }
      case GenStmt::Kind::Loop: {
        // The counter declaration, bounded positive start, decrement, and
        // exit test are emitted structurally: no mutation can remove them,
        // so the loop halts within `trips` iterations no matter what the
        // body does (break only exits earlier).
        std::string c = cat("c", counter_id++);
        out += cat(pad, "poly int ", c, ";\n", pad, c, " = ((", s.expr,
                   ") % ", s.trips, ") + 1;\n", pad, "do {\n");
        for (const GenStmt& child : s.body) stmt(child, depth + 1);
        if (s.has_break)
          out += cat(pad, "  if (((", s.break_expr, ") & 7) == 3) { break; }\n");
        out += cat(pad, "  ", c, " -= 1;\n");
        out += cat(pad, "} while (", c, " > 0);\n");
        return;
      }
      case GenStmt::Kind::Spawn: {
        out += cat(pad, "spawn {\n");
        for (const GenStmt& c : s.body) stmt(c, depth + 1);
        out += cat(pad, "}\n");
        return;
      }
    }
  }
};

std::int64_t stmt_bound(const GenStmt& s) {
  switch (s.kind) {
    case GenStmt::Kind::If: {
      std::int64_t then_b = 0, else_b = 0;
      for (const GenStmt& c : s.body) then_b += stmt_bound(c);
      for (const GenStmt& c : s.else_body) else_b += stmt_bound(c);
      return 2 + std::max(then_b, else_b);
    }
    case GenStmt::Kind::Loop: {
      std::int64_t body_b = 0;
      for (const GenStmt& c : s.body) body_b += stmt_bound(c);
      return 3 + static_cast<std::int64_t>(s.trips) * (body_b + 3);
    }
    case GenStmt::Kind::Spawn: {
      std::int64_t body_b = 0;
      for (const GenStmt& c : s.body) body_b += stmt_bound(c);
      return 3 + body_b;  // child blocks are charged to the spawner's bound
    }
    default:
      return 1;
  }
}

bool stmt_uses_spawn(const GenStmt& s) {
  if (s.kind == GenStmt::Kind::Spawn) return true;
  for (const GenStmt& c : s.body)
    if (stmt_uses_spawn(c)) return true;
  for (const GenStmt& c : s.else_body)
    if (stmt_uses_spawn(c)) return true;
  return false;
}

/// Does `text` reference variable v<idx> as a whole token?
bool text_uses_var(const std::string& text, int idx) {
  const std::string name = var_name(idx);
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    std::size_t end = pos + name.size();
    bool head_ok = pos == 0 || !std::isalnum(static_cast<unsigned char>(text[pos - 1]));
    bool tail_ok =
        end >= text.size() || !std::isdigit(static_cast<unsigned char>(text[end]));
    if (head_ok && tail_ok) return true;
    pos = end;
  }
  return false;
}

bool stmt_uses_var(const GenStmt& s, int idx) {
  switch (s.kind) {
    case GenStmt::Kind::Assign:
    case GenStmt::Kind::Compound:
    case GenStmt::Kind::IncDec:
      if (s.var == idx) return true;
      break;
    default:
      break;
  }
  if (text_uses_var(s.expr, idx) || text_uses_var(s.break_expr, idx)) return true;
  for (const GenStmt& c : s.body)
    if (stmt_uses_var(c, idx)) return true;
  for (const GenStmt& c : s.else_body)
    if (stmt_uses_var(c, idx)) return true;
  return false;
}

}  // namespace

std::string GenProgram::render() const {
  std::string body_text;
  for (int v = 0; v < opts.num_vars; ++v)
    body_text += cat("  poly int ", var_name(v), ";\n");
  if (opts.allow_float) body_text += "  poly float g;\n";
  for (int v = 0; v < opts.num_vars; ++v)
    body_text += cat("  ", var_name(v), " = (x >> ", v, ") + procid() * ",
                     v + 1, ";\n");
  if (opts.allow_float) body_text += "  g = x * 0.5;\n";
  if (used_mono) {
    body_text += "  if (procid() == 0) { shared = x + 1; }\n";
    body_text += "  wait;\n";
    body_text += "  v0 = v0 + shared;\n";
  }

  Renderer r;
  for (const GenStmt& s : body) r.stmt(s, 1);
  body_text += r.out;

  body_text += cat("  return ", ret_expr, ";\n");

  std::string prog = "poly int x;\n";
  if (used_mono) prog += "mono int shared;\n";
  prog += "\nint main() {\n" + body_text + "}\n";
  return prog;
}

std::int64_t GenProgram::block_bound() const {
  // Declarations + per-var inits + mono prologue + return, then the tree.
  std::int64_t b = 4 + 2 * opts.num_vars + (used_mono ? 4 : 0);
  for (const GenStmt& s : body) b += stmt_bound(s);
  return b;
}

bool GenProgram::uses_spawn() const {
  for (const GenStmt& s : body)
    if (stmt_uses_spawn(s)) return true;
  return false;
}

bool GenProgram::var_used(int idx) const {
  if (idx == 0 && used_mono) return true;
  if (text_uses_var(ret_expr, idx)) return true;
  for (const GenStmt& s : body)
    if (stmt_uses_var(s, idx)) return true;
  return false;
}

GenProgram generate_ast(std::uint64_t seed, const GenOptions& options) {
  Rng rng(seed);
  GenProgram prog;
  prog.opts = options;
  prog.used_mono = options.allow_mono && rng.chance(1, 2);
  for (int s = 0; s < options.stmts; ++s)
    prog.body.push_back(gen_stmt(rng, options, 1));
  prog.ret_expr = int_expr(rng, options, options.expr_depth);
  return prog;
}

std::string generate_program(std::uint64_t seed, const GenOptions& options) {
  return generate_ast(seed, options).render();
}

GenStmt random_stmt(Rng& rng, const GenOptions& opts, int depth) {
  return gen_stmt(rng, opts, depth);
}

std::string random_int_expr(Rng& rng, const GenOptions& opts, int depth) {
  return int_expr(rng, opts, depth);
}

// ---------------------------------------------------------------- mutation

namespace {

/// Deterministic DFS collection of every statement list in the program
/// (mutation sites for insert/delete/splice) and every statement node.
void collect_lists(std::vector<GenStmt>& list, int depth,
                   std::vector<std::pair<std::vector<GenStmt>*, int>>& lists,
                   std::vector<GenStmt*>& nodes) {
  lists.emplace_back(&list, depth);
  for (GenStmt& s : list) {
    nodes.push_back(&s);
    if (s.kind == GenStmt::Kind::If || s.kind == GenStmt::Kind::Loop ||
        s.kind == GenStmt::Kind::Spawn) {
      collect_lists(s.body, depth + 1, lists, nodes);
      if (!s.else_body.empty()) collect_lists(s.else_body, depth + 1, lists, nodes);
    }
  }
}

/// Perturb one integer literal inside an expression string. Returns false
/// when the string holds no digits.
bool tweak_const(std::string& text, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
  for (std::size_t i = 0; i < text.size();) {
    if (std::isdigit(static_cast<unsigned char>(text[i]))) {
      std::size_t j = i;
      while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j])))
        ++j;
      // Skip float literals (e.g. the 0.5 in FloatOp expressions) and
      // digits that are part of an identifier (v2, c0): renaming a
      // variable would produce an uncompilable program.
      bool is_float = (j < text.size() && text[j] == '.') ||
                      (i > 0 && text[i - 1] == '.');
      bool is_ident =
          i > 0 && (std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                    text[i - 1] == '_');
      if (!is_float && !is_ident) runs.emplace_back(i, j);
      i = j;
    } else {
      ++i;
    }
  }
  if (runs.empty()) return false;
  auto [begin, end] = runs[rng.next_below(runs.size())];
  std::int64_t v = 0;
  for (std::size_t i = begin; i < end && v < (1ll << 40); ++i)
    v = v * 10 + (text[i] - '0');
  std::string repl;
  switch (rng.next_below(6)) {
    case 0: repl = std::to_string(v + 1); break;
    case 1: repl = std::to_string(v > 0 ? v - 1 : 0); break;
    case 2: repl = std::to_string(v * 2 + 1); break;
    case 3: repl = "0"; break;
    case 4: repl = "63"; break;
    default: repl = std::to_string(rng.next_range(0, 9223372036854775807ll)); break;
  }
  text.replace(begin, end - begin, repl);
  return true;
}

/// Every tweakable expression string in the tree, in DFS order.
void collect_exprs(std::vector<GenStmt>& list, std::vector<std::string*>& out) {
  for (GenStmt& s : list) {
    if (!s.expr.empty()) out.push_back(&s.expr);
    if (s.has_break) out.push_back(&s.break_expr);
    collect_exprs(s.body, out);
    collect_exprs(s.else_body, out);
  }
}

GenStmt deep_copy(const GenStmt& s) { return s; }

}  // namespace

bool mutate_program(GenProgram& prog, Rng& rng) {
  std::vector<std::pair<std::vector<GenStmt>*, int>> lists;
  std::vector<GenStmt*> nodes;
  collect_lists(prog.body, 1, lists, nodes);

  switch (rng.next_below(8)) {
    case 0: {  // insert a fresh random statement
      auto [list, depth] = lists[rng.next_below(lists.size())];
      std::size_t at = rng.next_below(list->size() + 1);
      list->insert(list->begin() + static_cast<std::ptrdiff_t>(at),
                   gen_stmt(rng, prog.opts, depth));
      return true;
    }
    case 1: {  // delete a statement
      auto [list, depth] = lists[rng.next_below(lists.size())];
      (void)depth;
      if (list->empty()) return false;
      list->erase(list->begin() +
                  static_cast<std::ptrdiff_t>(rng.next_below(list->size())));
      return true;
    }
    case 2: {  // splice: copy one subtree to another position
      if (nodes.empty()) return false;
      GenStmt copy = deep_copy(*nodes[rng.next_below(nodes.size())]);
      auto [list, depth] = lists[rng.next_below(lists.size())];
      (void)depth;
      std::size_t at = rng.next_below(list->size() + 1);
      list->insert(list->begin() + static_cast<std::ptrdiff_t>(at),
                   std::move(copy));
      return true;
    }
    case 3: {  // constant tweak
      std::vector<std::string*> exprs;
      collect_exprs(prog.body, exprs);
      exprs.push_back(&prog.ret_expr);
      return tweak_const(*exprs[rng.next_below(exprs.size())], rng);
    }
    case 4: {  // barrier toggle: insert a wait, or drop an existing one
      std::vector<GenStmt*> waits;
      for (GenStmt* s : nodes)
        if (s->kind == GenStmt::Kind::Wait) waits.push_back(s);
      if (!waits.empty() && rng.chance(1, 2)) {
        GenStmt* victim = waits[rng.next_below(waits.size())];
        victim->kind = GenStmt::Kind::Assign;
        victim->var = rand_var(rng, prog.opts);
        victim->expr = int_expr(rng, prog.opts, 1);
        return true;
      }
      if (!prog.opts.allow_barrier) return false;
      auto [list, depth] = lists[rng.next_below(lists.size())];
      (void)depth;
      GenStmt w;
      w.kind = GenStmt::Kind::Wait;
      std::size_t at = rng.next_below(list->size() + 1);
      list->insert(list->begin() + static_cast<std::ptrdiff_t>(at),
                   std::move(w));
      return true;
    }
    case 5: {  // spawn toggle: wrap a simple statement, or unwrap a spawn
      std::vector<GenStmt*> spawns;
      for (GenStmt* s : nodes)
        if (s->kind == GenStmt::Kind::Spawn) spawns.push_back(s);
      if (!spawns.empty() && rng.chance(1, 2)) {
        GenStmt* victim = spawns[rng.next_below(spawns.size())];
        if (victim->body.empty()) return false;
        GenStmt inner = std::move(victim->body.front());
        *victim = std::move(inner);
        return true;
      }
      if (!prog.opts.allow_spawn) return false;
      std::vector<GenStmt*> simple;
      for (GenStmt* s : nodes)
        if (s->kind == GenStmt::Kind::Assign ||
            s->kind == GenStmt::Kind::Compound ||
            s->kind == GenStmt::Kind::IncDec)
          simple.push_back(s);
      if (simple.empty()) return false;
      GenStmt* victim = simple[rng.next_below(simple.size())];
      GenStmt wrapped;
      wrapped.kind = GenStmt::Kind::Spawn;
      wrapped.body.push_back(std::move(*victim));
      *victim = std::move(wrapped);
      return true;
    }
    case 6: {  // loop-bound tweak
      std::vector<GenStmt*> loops;
      for (GenStmt* s : nodes)
        if (s->kind == GenStmt::Kind::Loop) loops.push_back(s);
      if (loops.empty()) return false;
      loops[rng.next_below(loops.size())]->trips =
          static_cast<int>(rng.next_range(1, 8));
      return true;
    }
    default: {  // add or drop an else branch
      std::vector<GenStmt*> ifs;
      for (GenStmt* s : nodes)
        if (s->kind == GenStmt::Kind::If) ifs.push_back(s);
      if (ifs.empty()) return false;
      GenStmt* target = ifs[rng.next_below(ifs.size())];
      if (!target->else_body.empty() && rng.chance(1, 2)) {
        target->else_body.clear();
      } else {
        target->else_body.push_back(gen_stmt(rng, prog.opts, 2));
      }
      return true;
    }
  }
}

}  // namespace msc::workload
