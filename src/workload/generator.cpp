#include "msc/workload/generator.hpp"

#include <vector>

#include "msc/support/rng.hpp"
#include "msc/support/str.hpp"

namespace msc::workload {

namespace {

class Generator {
 public:
  Generator(std::uint64_t seed, const GenOptions& opts) : rng_(seed), opts_(opts) {}

  std::string run() {
    std::string body;
    // Declarations and deterministic initialization from the seeded input.
    for (int v = 0; v < opts_.num_vars; ++v)
      body += cat("  poly int v", v, ";\n");
    if (opts_.allow_float) body += "  poly float g;\n";
    for (int v = 0; v < opts_.num_vars; ++v)
      body += cat("  v", v, " = (x >> ", v, ") + procid() * ", v + 1, ";\n");
    if (opts_.allow_float) body += "  g = x * 0.5;\n";

    bool used_mono = opts_.allow_mono && rng_.chance(1, 2);
    if (used_mono) {
      body += "  if (procid() == 0) { shared = x + 1; }\n";
      body += "  wait;\n";
      body += cat("  v0 = v0 + shared;\n");
    }

    for (int s = 0; s < opts_.stmts; ++s) body += stmt(1);

    body += cat("  return ", int_expr(opts_.expr_depth), ";\n");

    std::string prog = "poly int x;\n";
    if (used_mono) prog += "mono int shared;\n";
    prog += "\nint main() {\n" + body + "}\n";
    return prog;
  }

 private:
  std::string var(int exclude_counters = 0) {
    (void)exclude_counters;
    return cat("v", rng_.next_below(static_cast<std::uint64_t>(opts_.num_vars)));
  }

  std::string int_expr(int depth) {
    if (depth <= 0 || rng_.chance(1, 3)) {
      switch (rng_.next_below(4)) {
        case 0: return var();
        case 1: return std::to_string(rng_.next_range(0, 17));
        case 2: return "procid()";
        default: return "x";
      }
    }
    static const char* ops[] = {"+", "-", "*", "%", "&", "|",
                                "^", "<", "<=", "==", "!=", ">>"};
    const char* op = ops[rng_.next_below(12)];
    std::string lhs = int_expr(depth - 1);
    std::string rhs = int_expr(depth - 1);
    // Keep shift counts tiny so values stay interesting.
    if (std::string(op) == ">>") rhs = std::to_string(rng_.next_range(0, 5));
    return cat("(", lhs, " ", op, " ", rhs, ")");
  }

  std::string stmt(int depth) {
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    std::uint64_t pick = rng_.next_below(10);
    if (depth >= opts_.max_depth) pick = rng_.next_below(4);  // leaves only
    switch (pick) {
      case 0:
      case 1:
        return cat(pad, var(), " = ", int_expr(opts_.expr_depth), ";\n");
      case 2: {
        static const char* kCompound[] = {"+=", "-=", "*=", "^=", "|=", "&="};
        return cat(pad, var(), " ", kCompound[rng_.next_below(6)], " ",
                   int_expr(opts_.expr_depth - 1), ";\n");
      }
      case 3:
        return rng_.chance(1, 2) ? cat(pad, var(), "++;\n")
                                 : cat(pad, "--", var(), ";\n");
      case 4:
        if (opts_.allow_float)
          return cat(pad, "g = g * 0.5 + ", int_expr(1), ";\n");
        return cat(pad, var(), " = ", int_expr(opts_.expr_depth), ";\n");
      case 5:
        if (opts_.allow_barrier && rng_.chance(1, 2)) return cat(pad, "wait;\n");
        return cat(pad, var(), " = ", int_expr(opts_.expr_depth), ";\n");
      case 6:
      case 7: {  // divergent if/else
        std::string s = cat(pad, "if (", int_expr(2), ") {\n");
        int n = static_cast<int>(rng_.next_range(1, 2));
        for (int i = 0; i < n; ++i) s += stmt(depth + 1);
        if (rng_.chance(2, 3)) {
          s += cat(pad, "} else {\n");
          n = static_cast<int>(rng_.next_range(1, 2));
          for (int i = 0; i < n; ++i) s += stmt(depth + 1);
        }
        return s + cat(pad, "}\n");
      }
      default: {  // bounded counted loop (always terminates)
        if (!opts_.allow_loops)
          return cat(pad, var(), " = ", int_expr(opts_.expr_depth), ";\n");
        int id = counter_id_++;
        std::string c = cat("c", id);
        std::string s =
            cat(pad, "poly int ", c, ";\n", pad, c, " = (", int_expr(1), " % ",
                opts_.loop_max_trips, ") + 1;\n", pad, "do {\n");
        int n = static_cast<int>(rng_.next_range(1, 2));
        for (int i = 0; i < n; ++i) s += stmt(depth + 1);
        if (rng_.chance(1, 4))
          s += cat(pad, "  if ((", int_expr(1), " & 7) == 3) { break; }\n");
        s += cat(pad, "  ", c, " -= 1;\n");
        s += cat(pad, "} while (", c, " > 0);\n");
        return s;
      }
    }
  }

  Rng rng_;
  GenOptions opts_;
  int counter_id_ = 0;
};

}  // namespace

std::string generate_program(std::uint64_t seed, const GenOptions& options) {
  return Generator(seed, options).run();
}

}  // namespace msc::workload
