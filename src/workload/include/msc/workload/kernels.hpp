#ifndef MSC_WORKLOAD_KERNELS_HPP
#define MSC_WORKLOAD_KERNELS_HPP

#include <string>
#include <vector>

namespace msc::workload {

/// A named MIMDC program used by tests, examples, and benches.
struct Kernel {
  std::string name;
  std::string description;
  std::string source;
  /// True if the kernel's poly results depend only on the PE's own inputs
  /// (safe for exact per-PE oracle-vs-SIMD comparison even with spawn).
  bool per_pe_deterministic = true;
  /// Recommended inputs: the harness seeds global poly int `x` (if
  /// declared) from the per-PE seed stream before running.
  bool wants_seed_input = false;
};

/// The paper's Listing 1 control skeleton as a complete MIMDC program
/// (the body statements A/B/C/D/E/F become real arithmetic).
const Kernel& listing1();
/// Listing 3: Listing 1 plus a barrier before F (§2.6).
const Kernel& listing3();
/// Listing 4 verbatim: the example the paper compiles into Listing 5.
const Kernel& listing4();

/// Divergence/synthesis kernels for the quantitative experiments.
const std::vector<Kernel>& suite();

/// Suite lookup by name; throws std::out_of_range if unknown.
const Kernel& kernel(const std::string& name);

/// A Listing-1-shaped program with `k` sequential divergent if/else
/// regions (drives T-EXPLODE: meta-state count vs. branch count).
std::string branchy_source(int k);

/// Same as branchy_source but with a barrier after each region
/// (drives T-BARRIER).
std::string branchy_barrier_source(int k);

/// `k` sequential do-while loops with PE-dependent trip counts. Unlike
/// branchy diamonds (which re-synchronize at every join), divergent loop
/// exits let PEs spread across up to 2^k loop combinations — the real
/// §1.2 state-explosion driver (drives T-EXPLODE).
std::string loopy_source(int k);

/// loopy_source with a barrier after each loop: occupancy windows never
/// overlap, so the state count stays linear in k (§2.6, drives T-BARRIER).
std::string loopy_barrier_source(int k);

/// A two-arm kernel whose arms cost ~`cheap` vs ~`expensive` body
/// operations inside a loop (drives T-SPLIT; the paper's 5-vs-100-cycle
/// example).
std::string imbalanced_source(int cheap_ops, int expensive_ops);

/// Straight-line variant of the above (the exact Fig. 3/4 shape; safe for
/// base-mode conversion with time splitting).
std::string imbalanced_once_source(int cheap_ops, int expensive_ops);

/// A depth-`depth` tree of nested two-arm branches with unequal arm costs;
/// every all-ones path ends in a heavy straight-line leaf that triggers
/// §2.4 splitting. PEs spread across the tree, so meta states hold several
/// simultaneously-occupied branch blocks and reach() enumeration (3^width
/// choice combinations) dominates conversion — the restart-heavy workload
/// for CONV-CACHE.
std::string nested_branch_source(int depth);

}  // namespace msc::workload

#endif  // MSC_WORKLOAD_KERNELS_HPP
