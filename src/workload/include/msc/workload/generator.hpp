#ifndef MSC_WORKLOAD_GENERATOR_HPP
#define MSC_WORKLOAD_GENERATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "msc/support/rng.hpp"

namespace msc::workload {

/// Knobs for the random SPMD program generator.
struct GenOptions {
  int stmts = 6;         ///< top-level statements in main
  int max_depth = 3;     ///< nesting depth of if/loop constructs
  int num_vars = 4;      ///< scratch poly int variables
  int expr_depth = 3;
  bool allow_barrier = true;
  bool allow_float = true;
  bool allow_loops = true;
  bool allow_mono = true;   ///< adds a PE-0-guarded mono variable
  bool allow_spawn = false; ///< §3.2.5 spawn leaves (off for legacy suites)
  int loop_max_trips = 4;   ///< loop counters start in [1, loop_max_trips]
};

/// One node of the generator's statement grammar. Programs are kept as
/// trees (not text) so the fuzzer's mutation and shrinking layers can
/// splice/insert/delete statements without ever producing an ill-formed
/// or non-terminating program: a Loop node renders its counter
/// declaration, bounded initialization, decrement, and exit test
/// structurally — they are not statements a mutation could remove, so
/// every rendered loop halts within `trips` iterations by construction
/// (the program never relies on the interpreter's block budget to stop).
struct GenStmt {
  enum class Kind : std::uint8_t {
    Assign,    ///< v<var> = <expr>;
    Compound,  ///< v<var> <op>= <expr>;
    IncDec,    ///< v<var>++; or --v<var>;
    FloatOp,   ///< g = g * 0.5 + <expr>;
    Wait,      ///< wait;
    If,        ///< if (<expr>) { body } [else { else_body }]
    Loop,      ///< bounded counted do-loop, body + structural counter
    Spawn,     ///< spawn { body }
  };
  Kind kind = Kind::Assign;
  int var = 0;           ///< target variable index for Assign/Compound/IncDec
  std::string op;        ///< Compound operator ("+=" …); IncDec "++"/"--"
  std::string expr;      ///< RHS / condition / loop trip seed expression
  int trips = 1;         ///< Loop: counter starts in [1, trips]
  bool has_break = false;    ///< Loop: optional data-dependent early break
  std::string break_expr;    ///< Loop: break condition seed
  std::vector<GenStmt> body;       ///< If-then / Loop / Spawn body
  std::vector<GenStmt> else_body;  ///< If: empty = no else branch
};

/// A whole generated program: options snapshot, optional mono prologue,
/// and the statement tree of main. Rendering is deterministic (loop
/// counters are numbered in traversal order), so equal trees render to
/// byte-identical source.
struct GenProgram {
  GenOptions opts;
  bool used_mono = false;
  std::vector<GenStmt> body;
  std::string ret_expr = "0";

  std::string render() const;
  /// Upper bound on MIMD blocks any single PE (or spawned child) executes:
  /// statements are counted structurally and loop bodies multiply by
  /// `trips`. Every generated program halts within nprocs * block_bound()
  /// oracle blocks (workload_test pins this).
  std::int64_t block_bound() const;
  bool uses_spawn() const;
  /// True when variable v<idx> is referenced anywhere (statement targets
  /// or expression text) — the shrinker uses this to drop dead scratch
  /// variables.
  bool var_used(int idx) const;
};

/// Build the statement tree for `seed` (grammar identical to
/// generate_program; exposed for the fuzzer's mutation layer).
GenProgram generate_ast(std::uint64_t seed, const GenOptions& options = {});

/// Generate a random, *always terminating*, race-free MIMDC program:
/// loops are counted down from a bounded positive start (the bound is
/// structural — see GenStmt), conditions are PE-divergent (they read the
/// seeded input `x` and `procid()`), division and modulo are total
/// (x/0 == 0 by language definition), and mono writes are guarded to PE 0
/// before a barrier. Deterministic in `seed`, byte-identical across
/// platforms and standard libraries (all randomness is the self-contained
/// splitmix64 msc::Rng — no <random> distributions).
std::string generate_program(std::uint64_t seed, const GenOptions& options = {});

/// One random statement / integer expression from the same grammar, for
/// insert/replace mutations. `depth` is the current nesting depth.
GenStmt random_stmt(Rng& rng, const GenOptions& opts, int depth);
std::string random_int_expr(Rng& rng, const GenOptions& opts, int depth);

/// Fuzzing mutation layer: apply one structure-preserving random
/// mutation (insert/delete/splice a statement, tweak a constant, toggle
/// a barrier or spawn, change a loop bound, add/drop an else branch).
/// Mutated programs stay well-formed and always-terminating because
/// loop-control structure is not mutable. Returns false when the rolled
/// mutation had no applicable site (caller may simply retry).
bool mutate_program(GenProgram& prog, Rng& rng);

}  // namespace msc::workload

#endif  // MSC_WORKLOAD_GENERATOR_HPP
