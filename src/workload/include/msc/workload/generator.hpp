#ifndef MSC_WORKLOAD_GENERATOR_HPP
#define MSC_WORKLOAD_GENERATOR_HPP

#include <cstdint>
#include <string>

namespace msc::workload {

/// Knobs for the random SPMD program generator.
struct GenOptions {
  int stmts = 6;         ///< top-level statements in main
  int max_depth = 3;     ///< nesting depth of if/loop constructs
  int num_vars = 4;      ///< scratch poly int variables
  int expr_depth = 3;
  bool allow_barrier = true;
  bool allow_float = true;
  bool allow_loops = true;
  bool allow_mono = true;   ///< adds a PE-0-guarded mono variable
  int loop_max_trips = 4;   ///< loop counters start in [1, loop_max_trips]
};

/// Generate a random, *always terminating*, race-free MIMDC program:
/// loops are counted down from a bounded positive start, conditions are
/// PE-divergent (they read the seeded input `x` and `procid()`), division
/// and modulo are total (x/0 == 0 by language definition), and mono writes
/// are guarded to PE 0 before a barrier. Deterministic in `seed`.
std::string generate_program(std::uint64_t seed, const GenOptions& options = {});

}  // namespace msc::workload

#endif  // MSC_WORKLOAD_GENERATOR_HPP
