#include "msc/workload/kernels.hpp"

#include <stdexcept>

#include "msc/support/str.hpp"

namespace msc::workload {

namespace {

Kernel make(std::string name, std::string desc, std::string src,
            bool per_pe = true, bool seeded = false) {
  Kernel k;
  k.name = std::move(name);
  k.description = std::move(desc);
  k.source = std::move(src);
  k.per_pe_deterministic = per_pe;
  k.wants_seed_input = seeded;
  return k;
}

}  // namespace

const Kernel& listing1() {
  static const Kernel k = make(
      "listing1",
      "Paper Listing 1: if (A) do B while (C); else do D while (E); F — "
      "with terminating bodies so the oracle can run it",
      R"(// Listing 1 control skeleton (Fig. 1: states A, B;C, D;E, F)
poly int x;   // per-PE input, seeded by the harness

int main() {
  poly int acc;
  poly int i;
  acc = 0;
  i = (x % 4) + 1;              // A: pick trip count and branch condition
  if (x % 2) {
    do { acc = acc + 3; i = i - 1; } while (i > 0);        // B ; C
  } else {
    do { acc = acc * 2 + 1; i = i - 2; } while (i > 0);    // D ; E
  }
  acc = acc + 100;              // F
  return acc;
}
)",
      true, true);
  return k;
}

const Kernel& listing3() {
  static const Kernel k = make(
      "listing3",
      "Paper Listing 3: Listing 1 plus a barrier before F (§2.6, Fig. 6)",
      R"(poly int x;

int main() {
  poly int acc;
  poly int i;
  acc = 0;
  i = (x % 4) + 1;
  if (x % 2) {
    do { acc = acc + 3; i = i - 1; } while (i > 0);
  } else {
    do { acc = acc * 2 + 1; i = i - 2; } while (i > 0);
  }
  wait;                         // barrier sync. of all threads
  acc = acc + 100;
  return acc;
}
)",
      true, true);
  return k;
}

const Kernel& listing4() {
  static Kernel k = make(
      "listing4",
      "Paper Listing 4 verbatim (static conversion/codegen only: its loops "
      "never terminate at runtime, exactly as printed in the paper)",
      R"(int main() {
  poly int x;

  if (x) {
    do { x = 1; } while (x);
  } else {
    do { x = 2; } while (x);
  }

  return x;
}
)");
  return k;
}

std::string branchy_source(int k) {
  std::string body;
  for (int i = 0; i < k; ++i) {
    // Arms of different lengths so PEs drift apart in time.
    body += cat("  if ((x >> ", i, ") & 1) { acc = acc + ", i + 1,
                "; } else { acc = acc * 3; acc = acc - ", i,
                "; acc = acc + 1; }\n");
  }
  return cat(R"(poly int x;

int main() {
  poly int acc;
  acc = 0;
)",
             body, R"(  return acc;
}
)");
}

std::string branchy_barrier_source(int k) {
  std::string body;
  for (int i = 0; i < k; ++i) {
    body += cat("  if ((x >> ", i, ") & 1) { acc = acc + ", i + 1,
                "; } else { acc = acc * 3; acc = acc - ", i,
                "; acc = acc + 1; }\n  wait;\n");
  }
  return cat(R"(poly int x;

int main() {
  poly int acc;
  acc = 0;
)",
             body, R"(  return acc;
}
)");
}

std::string imbalanced_source(int cheap_ops, int expensive_ops) {
  std::string cheap, expensive;
  for (int i = 0; i < cheap_ops; ++i) cheap += "      acc = acc + 1;\n";
  for (int i = 0; i < expensive_ops; ++i) expensive += "      acc = acc * 3 + 1;\n";
  return cat(R"(poly int x;

int main() {
  poly int acc;
  poly int i;
  acc = 0;
  i = 6;
  do {
    if (x & 1) {
)",
             cheap, R"(    } else {
)",
             expensive, R"(    }
    x = x >> 1;
    i = i - 1;
  } while (i > 0);
  return acc;
}
)");
}

namespace {

std::string loopy_body(int k, bool barrier) {
  std::string body;
  for (int j = 0; j < k; ++j) {
    body += cat("  i = ((x >> ", j, ") & 3) + 1;\n",
                "  do { acc = acc * 2 + ", j, "; i = i - 1; } while (i > 0);\n");
    if (barrier) body += "  wait;\n";
  }
  return cat(R"(poly int x;

int main() {
  poly int acc;
  poly int i;
  acc = 0;
)",
             body, R"(  return acc;
}
)");
}

}  // namespace

std::string loopy_source(int k) { return loopy_body(k, false); }

std::string loopy_barrier_source(int k) { return loopy_body(k, true); }

std::string imbalanced_once_source(int cheap_ops, int expensive_ops) {
  std::string cheap, expensive;
  for (int i = 0; i < cheap_ops; ++i) cheap += "    acc = acc + 1;\n";
  for (int i = 0; i < expensive_ops; ++i) expensive += "    acc = acc * 3 + 1;\n";
  return cat(R"(poly int x;

int main() {
  poly int acc;
  acc = 0;
  if (x & 1) {
)",
             cheap, R"(  } else {
)",
             expensive, R"(  }
  acc = acc + 5;
  return acc;
}
)");
}

namespace {

std::string nested_arm(int d, const std::string& path) {
  if (d == 0) {
    // Heavy leaves on paths taking two TRUE arms in a row: enough
    // straight-line work past the split thresholds to force §2.4
    // splitting, in enough distinct subtrees that splits (and hence
    // restarts) keep arriving throughout discovery.
    if (path.size() >= 2 && path.compare(path.size() - 2, 2, "11") == 0) {
      std::string heavy;
      for (int i = 0; i < 24; ++i) heavy += "a = a * 3 + 1; ";
      return heavy;
    }
    return cat("a = a + ", path.size(), "; ");
  }
  return cat("if ((a >> ", d, ") & 1) { ", nested_arm(d - 1, path + "1"),
             "} else { ", nested_arm(d - 1, path + "0"), "} a = a + 1; ");
}

}  // namespace

std::string nested_branch_source(int depth) {
  // The trailing cheap loop keeps finished PEs occupying low-cost blocks,
  // so every heavy tail left by a §2.4 split still shares its meta states
  // with a cheap co-member and keeps splitting — one restart per slice —
  // until the whole leaf is diced. Without it, splitting stops as soon as
  // the cheap paths halt (a lone member is never imbalanced).
  return cat(R"(int main() {
  poly int a;
  poly int j;
  a = procid();
  )",
             nested_arm(depth, ""), R"(
  j = 0;
  while (j < 8) { j = j + 1; }
  return a + j;
}
)");
}

const std::vector<Kernel>& suite() {
  static const std::vector<Kernel> kernels = [] {
    std::vector<Kernel> v;
    v.push_back(listing1());
    v.push_back(listing3());

    v.push_back(make(
        "uniform",
        "No divergence: every PE runs the same path (mono-like behaviour)",
        R"(poly int x;

int main() {
  poly int acc;
  poly int i;
  acc = x;
  i = 0;
  while (i < 8) { acc = acc * 2 + i; i = i + 1; }
  return acc;
}
)",
        true, true));

    v.push_back(make("branchy4",
                     "Four sequential divergent diamonds (state-space growth)",
                     branchy_source(4), true, true));

    v.push_back(make(
        "loopmix",
        "PE-dependent trip counts in two consecutive loops, mixed int/float",
        R"(poly int x;

int main() {
  poly int i;
  poly float f;
  f = 1.0;
  i = (x % 5) + 1;
  do { f = f * 1.5 + 1.0; i = i - 1; } while (i > 0);
  i = (x % 3) + 1;
  do { f = f - 0.25; i = i - 1; } while (i > 0);
  return f * 8.0;
}
)",
        true, true));

    v.push_back(make(
        "recursion",
        "Recursive fib via §2.2 return-site multiway branches",
        R"(poly int x;

int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

int main() {
  return fib(x % 8) + 10 * (x % 2);
}
)",
        true, true));

    v.push_back(make(
        "spawn_tree",
        "§3.2.5 restricted dynamic process creation: each initial PE spawns "
        "two workers that return and free their PE",
        R"(int main() {
  poly int i;
  i = 0;
  while (i < 2) {
    spawn {
      return 1000 + procid();
    }
    i = i + 1;
  }
  return procid();
}
)",
        /*per_pe=*/false, /*seeded=*/false));

    v.push_back(make(
        "barrier_pipeline",
        "Fill a poly array, barrier, then read the right neighbour's slot "
        "via parallel subscripting",
        R"(int main() {
  poly int a[4];
  poly int s;
  poly int j;
  j = 0;
  while (j < 4) { a[j] = procid() * 10 + j; j = j + 1; }
  wait;
  s = a[1][[(procid() + 1) % nprocs()]];
  return s;
}
)",
        true, false));

    v.push_back(make(
        "floatmix",
        "Float arithmetic with divergence and an int return cast",
        R"(poly int x;

int main() {
  poly float f;
  f = x * 0.5 + 1.25;
  if (f > 2.0) { f = f * 2.0; } else { f = f + 3.0; }
  return f * 4.0;
}
)",
        true, true));

    v.push_back(make(
        "mono_reduce",
        "Single-writer mono broadcast guarded by a barrier",
        R"(mono int total;
poly int x;

int main() {
  if (procid() == 0) { total = 42; }
  wait;
  return total + x;
}
)",
        true, true));

    v.push_back(make(
        "oddeven_sort",
        "Odd-even transposition sort across PEs: router exchanges with "
        "double-barrier phases (classic SIMD algorithm)",
        R"(poly int x;

int main() {
  poly int v;
  poly int phase;
  poly int partner;
  poly int other;
  poly int valid;
  v = x;
  wait;
  for (phase = 0; phase < nprocs(); phase++) {
    if ((phase & 1) == (procid() & 1)) { partner = procid() + 1; }
    else { partner = procid() - 1; }
    valid = partner >= 0 && partner < nprocs();
    other = 0;
    if (valid) { other = v[[partner]]; }
    wait;              // everyone has read before anyone writes
    if (valid) {
      if (partner > procid()) { if (other < v) { v = other; } }
      else { if (other > v) { v = other; } }
    }
    wait;              // everyone has written before the next read
  }
  return v;
}
)",
        true, true));

    v.push_back(make(
        "escape_iter",
        "Escape-time iteration (Mandelbrot-style): per-PE trip counts "
        "diverge wildly — the canonical SIMD-divergence workload",
        R"(poly int x;

int main() {
  poly float cr;
  poly float ci;
  poly float zr;
  poly float zi;
  poly float t;
  poly int it;
  cr = (x % 8) / 4.0 - 1.1;
  ci = ((x >> 3) % 8) / 4.0 - 1.0;
  zr = 0.0;
  zi = 0.0;
  it = 0;
  while (zr * zr + zi * zi <= 4.0 && it < 24) {
    t = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = t;
    it++;
  }
  return it;
}
)",
        true, true));

    v.push_back(make("imbalanced",
                     "Divergent arms of very different costs inside a loop "
                     "(drives §2.4 time splitting; explodes the base-mode "
                     "state space when split — see DESIGN.md)",
                     imbalanced_source(1, 12), true, true));

    v.push_back(make("imbalanced_once",
                     "Straight-line divergent arms of very different costs "
                     "(the paper's Fig. 3/4 shape: split without loops)",
                     imbalanced_once_source(1, 12), true, true));

    return v;
  }();
  return kernels;
}

const Kernel& kernel(const std::string& name) {
  for (const Kernel& k : suite())
    if (k.name == name) return k;
  if (name == "listing4") return listing4();
  throw std::out_of_range(cat("unknown kernel '", name, "'"));
}

}  // namespace msc::workload
