#ifndef MSC_DRIVER_RUNNER_HPP
#define MSC_DRIVER_RUNNER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/mimd/machine.hpp"
#include "msc/simd/machine.hpp"

namespace msc::driver {

/// What a run produced, in machine-independent form — the basis of every
/// oracle-vs-SIMD equivalence check.
struct Observed {
  /// main's per-PE return value (Layout::kResultAddr); only meaningful
  /// where `ran[p]` is true.
  std::vector<Value> results;
  std::vector<bool> ran;
  /// Final values of every named poly global, per PE (arrays flattened).
  std::map<std::string, std::vector<Value>> poly_globals;
  /// Final values of every named mono global.
  std::map<std::string, std::vector<Value>> mono_globals;

  bool operator==(const Observed& o) const;
  /// Per-PE-order-insensitive comparison (for spawn workloads, where PE
  /// allocation order may differ between the asynchronous oracle and the
  /// lockstep SIMD machine): multisets of (result, ran) plus globals.
  bool equivalent_unordered(const Observed& o) const;
  std::string to_string() const;
};

/// Deterministic per-PE input: value poked into poly global `x` (when the
/// program declares one) before running. Shared by both machines.
std::int64_t seed_input(std::uint64_t seed, std::int64_t pe);

/// Write seeds/initial values into a machine via the layout. M is
/// MimdMachine or SimdMachine (lane-major stores: one bulk fill_lane per
/// seeded variable) or InterpMachine (per-PE poke fallback). Both paths
/// are byte-identical: fill_lane(addr, vals) == nprocs pokes of
/// Value::of_int(vals[p]) (lane_store_test pins it).
template <typename M>
void seed_machine(M& machine, const Compiled& compiled,
                  const mimd::RunConfig& config, std::uint64_t seed) {
  const auto* slot = compiled.layout.find("x");
  if (!slot || slot->storage != frontend::Storage::PolyStatic) return;
  if constexpr (requires(std::vector<std::int64_t> v) {
                  machine.fill_lane(slot->addr, v);
                }) {
    std::vector<std::int64_t> vals(static_cast<std::size_t>(config.nprocs));
    for (std::int64_t p = 0; p < config.nprocs; ++p)
      vals[static_cast<std::size_t>(p)] = seed_input(seed, p);
    machine.fill_lane(slot->addr, vals);
  } else {
    for (std::int64_t p = 0; p < config.nprocs; ++p)
      machine.poke(p, slot->addr, Value::of_int(seed_input(seed, p)));
  }
}

/// Write a pre-rendered JSON document to `path` ("-" = stdout); `what`
/// names the payload in error messages. Throws std::runtime_error when the
/// file cannot be written. Shared by every --trace-*/--profile-*/--metrics
/// sink in mscc and by mscprof's --write.
void write_json_file(const std::string& json, const std::string& what,
                     const std::string& path);

/// Write `stats` as JSON to `path` ("-" = stdout). Throws
/// std::runtime_error when the file cannot be written. Used by
/// --trace-convert and PipelineOptions::trace_convert_path.
void write_convert_trace(const core::ConvertStats& stats,
                         const std::string& path);

/// Write a pipeline's per-pass telemetry (support/telemetry.hpp JSON,
/// schema in DESIGN.md §9) to `path` ("-" = stdout). Throws
/// std::runtime_error when the file cannot be written. Used by mscc
/// --pass-timings and PipelineOptions::pass_timings_path.
void write_pass_timings(const telemetry::PipelineTrace& trace,
                        const std::string& path);

/// Write a finished SIMD machine's execution trace (simd::to_json: engine
/// name, cycle stats, utilization, per-meta-state visits) to `path`
/// ("-" = stdout). Throws std::runtime_error when the file cannot be
/// written. Used by mscc --trace-simd.
void write_simd_trace(const simd::SimdMachine& machine,
                      const std::string& path);

/// Collect observations from a SIMD machine the caller ran (manual step()
/// loops, the co-scheduler): per-PE results/ran plus final globals, in
/// the same form run_simd() returns.
Observed observe_simd(const simd::SimdMachine& machine,
                      const Compiled& compiled,
                      const mimd::RunConfig& config);

/// Run the MIMD oracle and collect observations.
Observed run_oracle(const Compiled& compiled, const mimd::RunConfig& config,
                    std::uint64_t seed, mimd::MimdStats* stats_out = nullptr);

/// Convert + codegen + run on the SIMD machine (engine per
/// `config.engine`) and collect observations. `visits_out`, when given,
/// receives the per-meta-state visit counts (differential tests,
/// --trace-simd).
Observed run_simd(const Compiled& compiled, const core::ConvertResult& conversion,
                  const mimd::RunConfig& config, std::uint64_t seed,
                  const ir::CostModel& cost = {},
                  const codegen::CodegenOptions& cg = {},
                  simd::SimdStats* stats_out = nullptr,
                  std::vector<std::int64_t>* visits_out = nullptr);

}  // namespace msc::driver

#endif  // MSC_DRIVER_RUNNER_HPP
