#ifndef MSC_DRIVER_PIPELINE_HPP
#define MSC_DRIVER_PIPELINE_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/core/convert.hpp"
#include "msc/frontend/ast.hpp"
#include "msc/frontend/sema.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"
#include "msc/support/diag.hpp"
#include "msc/support/telemetry.hpp"

namespace msc::telemetry {
class TraceSink;
}

namespace msc::driver {

/// Output of the MIMDC front half: analyzed AST, memory layout, and the
/// simplified whole-program MIMD state graph (§2.1–2.2).
struct Compiled {
  std::unique_ptr<frontend::Program> program;
  frontend::Layout layout;
  Diagnostics diags;
  ir::StateGraph graph;
};

/// Lex → parse → sema → CFG build, with no IR passes applied. Building
/// block for custom pipelines; most callers want compile().
Compiled front(const std::string& source);

/// front() + the IR-stage passes of the default pipeline (simplify,
/// peephole). Throws CompileError on malformed input.
Compiled compile(const std::string& source);

/// compile() + the conversion-stage pipeline in one call.
struct Converted {
  Compiled compiled;
  core::ConvertResult conversion;
  /// Per-pass instrumentation for the pipeline that ran (--pass-timings).
  telemetry::PipelineTrace trace;
  /// Set when the pipeline included the `codegen` pass.
  std::optional<codegen::SimdProgram> prog;
};

/// Full front-half configuration: conversion options plus the driver-level
/// policies that wrap them.
struct PipelineOptions {
  /// Engine-level conversion knobs (threads, memoize, barrier_mode,
  /// max_meta_states...). Its stage flags (compress/subsume/straighten/
  /// time_split) select passes when `pipeline` is empty; with an explicit
  /// `pipeline` they are ignored — the pass list is the source of truth.
  core::ConvertOptions convert;
  /// Options for the `codegen` pass, when the pipeline includes it.
  codegen::CodegenOptions codegen;
  /// Retry under compression when plain conversion explodes (DESIGN.md §4).
  bool adaptive = false;
  /// When non-empty, write the conversion's ConvertStats as JSON to this
  /// path after a successful conversion ("-" = stdout). Schema: see
  /// core::to_json / DESIGN.md §5 (--trace-convert in mscc).
  std::string trace_convert_path;
  /// Explicit pass pipeline (--pass-pipeline). Empty = derive from the
  /// stage flags in `convert` (the default pipeline, plus compress /
  /// time-split when those flags are set).
  std::vector<std::string> pipeline;
  /// Pass names removed after resolution (--disable-pass).
  std::vector<std::string> disabled;
  /// Run the structural invariant checkers after every pass
  /// (--verify-each); failures raise pass::PipelineError naming the pass.
  bool verify_each = false;
  /// When non-empty, write the pipeline's telemetry JSON here
  /// ("-" = stdout); schema in DESIGN.md §9 (--pass-timings in mscc).
  std::string pass_timings_path;
  /// Chrome-trace sink for the pipeline run (null = tracing off). The
  /// PassManager emits one wall-clock span per pass and the convert pass
  /// adds its phase breakdown (--trace-chrome in mscc; DESIGN.md §10).
  telemetry::TraceSink* trace_sink = nullptr;
};

/// Resolve the pass list `options` describes: `options.pipeline` when
/// given, else the default pipeline with the stage flags in
/// `options.convert` folded in (compress/time-split inserted, subsume/
/// straighten dropped when disabled).
std::vector<std::string> resolve_pipeline(const PipelineOptions& options);

Converted convert(const std::string& source, const ir::CostModel& cost,
                  const PipelineOptions& options);

/// Back-compat convenience: wraps `options` in PipelineOptions (same
/// pass derivation, adaptive off, no traces).
Converted convert(const std::string& source, const ir::CostModel& cost = {},
                  const core::ConvertOptions& options = {});

}  // namespace msc::driver

#endif  // MSC_DRIVER_PIPELINE_HPP
