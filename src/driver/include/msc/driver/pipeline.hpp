#ifndef MSC_DRIVER_PIPELINE_HPP
#define MSC_DRIVER_PIPELINE_HPP

#include <memory>
#include <string>

#include "msc/core/convert.hpp"
#include "msc/frontend/ast.hpp"
#include "msc/frontend/sema.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"
#include "msc/support/diag.hpp"

namespace msc::driver {

/// Output of the MIMDC front half: analyzed AST, memory layout, and the
/// simplified whole-program MIMD state graph (§2.1–2.2).
struct Compiled {
  std::unique_ptr<frontend::Program> program;
  frontend::Layout layout;
  Diagnostics diags;
  ir::StateGraph graph;
};

/// Lex → parse → sema → CFG build → straighten. Throws CompileError on
/// malformed input.
Compiled compile(const std::string& source);

/// compile() + meta_state_convert() in one call.
struct Converted {
  Compiled compiled;
  core::ConvertResult conversion;
};

Converted convert(const std::string& source, const ir::CostModel& cost = {},
                  const core::ConvertOptions& options = {});

/// Full front-half configuration: conversion options plus the driver-level
/// policies that wrap them.
struct PipelineOptions {
  core::ConvertOptions convert;
  /// Use meta_state_convert_adaptive (compress only on state explosion).
  bool adaptive = false;
  /// When non-empty, write the conversion's ConvertStats as JSON to this
  /// path after a successful conversion ("-" = stdout). Schema: see
  /// core::to_json / DESIGN.md. Lets benches and users see where
  /// conversion time goes (--trace-convert in mscc).
  std::string trace_convert_path;
};

Converted convert(const std::string& source, const ir::CostModel& cost,
                  const PipelineOptions& options);

}  // namespace msc::driver

#endif  // MSC_DRIVER_PIPELINE_HPP
