#include "msc/driver/pipeline.hpp"

#include "msc/driver/runner.hpp"
#include "msc/frontend/parser.hpp"
#include "msc/ir/build.hpp"
#include "msc/pass/pass.hpp"

namespace msc::driver {

Compiled front(const std::string& source) {
  Compiled out;
  out.program = frontend::parse_mimdc(source);
  out.layout = frontend::analyze(*out.program, out.diags);
  out.graph = ir::build_state_graph(*out.program, out.layout);
  return out;
}

Compiled compile(const std::string& source) {
  Compiled out = front(source);
  pass::ManagerOptions mo;
  mo.pipeline = {"simplify", "peephole"};
  pass::PassManager pm(std::move(mo));
  pass::PipelineState st;
  st.graph = std::move(out.graph);
  pm.run(st);
  out.graph = std::move(st.graph);
  return out;
}

std::vector<std::string> resolve_pipeline(const PipelineOptions& options) {
  if (!options.pipeline.empty()) return options.pipeline;
  const core::ConvertOptions& o = options.convert;
  std::vector<std::string> names = {"simplify", "peephole"};
  if (o.compress) names.push_back("compress");
  if (o.time_split) names.push_back("time-split");
  names.push_back("convert");
  if (o.subsume) names.push_back("subsume");
  if (o.straighten) names.push_back("straighten");
  return names;
}

Converted convert(const std::string& source, const ir::CostModel& cost,
                  const PipelineOptions& options) {
  Converted out;
  out.compiled = front(source);

  pass::ManagerOptions mo;
  mo.pipeline = resolve_pipeline(options);
  mo.disabled = options.disabled;
  mo.verify_each = options.verify_each;
  pass::PassManager pm(std::move(mo));

  pass::PipelineState st;
  st.graph = std::move(out.compiled.graph);
  st.cost = cost;
  st.options = options.convert;
  // Stage selection lives in the pipeline; clear the flags so the convert
  // pass sees only what config passes (compress, time-split) set.
  st.options.compress = false;
  st.options.time_split = false;
  st.adaptive = options.adaptive;
  st.cgopts = options.codegen;
  st.trace_sink = options.trace_sink;

  out.trace = pm.run(st);
  out.compiled.graph = std::move(st.graph);
  if (!st.conversion)
    throw pass::PipelineError("pipeline contains no convert pass");
  out.conversion = std::move(*st.conversion);
  out.prog = std::move(st.prog);
  out.trace.sections.emplace_back("convert", core::to_json(out.conversion.stats));

  if (!options.trace_convert_path.empty())
    write_convert_trace(out.conversion.stats, options.trace_convert_path);
  if (!options.pass_timings_path.empty())
    write_pass_timings(out.trace, options.pass_timings_path);
  return out;
}

Converted convert(const std::string& source, const ir::CostModel& cost,
                  const core::ConvertOptions& options) {
  PipelineOptions po;
  po.convert = options;
  return convert(source, cost, po);
}

}  // namespace msc::driver
