#include "msc/driver/pipeline.hpp"

#include "msc/driver/runner.hpp"
#include "msc/frontend/parser.hpp"
#include "msc/ir/build.hpp"
#include "msc/ir/passes.hpp"
#include "msc/ir/peephole.hpp"

namespace msc::driver {

Compiled compile(const std::string& source) {
  Compiled out;
  out.program = frontend::parse_mimdc(source);
  out.layout = frontend::analyze(*out.program, out.diags);
  out.graph = ir::build_state_graph(*out.program, out.layout);
  ir::simplify(out.graph);
  ir::peephole(out.graph);
  return out;
}

Converted convert(const std::string& source, const ir::CostModel& cost,
                  const core::ConvertOptions& options) {
  Converted out;
  out.compiled = compile(source);
  out.conversion = core::meta_state_convert(out.compiled.graph, cost, options);
  return out;
}

Converted convert(const std::string& source, const ir::CostModel& cost,
                  const PipelineOptions& options) {
  Converted out;
  out.compiled = compile(source);
  out.conversion =
      options.adaptive
          ? core::meta_state_convert_adaptive(out.compiled.graph, cost,
                                              options.convert)
          : core::meta_state_convert(out.compiled.graph, cost, options.convert);
  if (!options.trace_convert_path.empty())
    write_convert_trace(out.conversion.stats, options.trace_convert_path);
  return out;
}

}  // namespace msc::driver
