#include "msc/driver/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "msc/support/rng.hpp"
#include "msc/support/str.hpp"

namespace msc::driver {

namespace {

/// Observation collection shared by both machines (same peek interface).
template <typename M>
Observed observe(const M& machine, const Compiled& compiled,
                 const mimd::RunConfig& config,
                 const std::vector<bool>& ran) {
  Observed obs;
  obs.ran = ran;
  obs.results.resize(static_cast<std::size_t>(config.nprocs));
  for (std::int64_t p = 0; p < config.nprocs; ++p)
    if (ran[static_cast<std::size_t>(p)])
      obs.results[static_cast<std::size_t>(p)] =
          machine.peek(p, frontend::Layout::kResultAddr);
  for (const auto& [name, slot] : compiled.layout.globals) {
    if (slot.storage == frontend::Storage::MonoStatic) {
      std::vector<Value> vals;
      for (std::int64_t c = 0; c < slot.size; ++c)
        vals.push_back(machine.peek_mono(slot.addr + c));
      obs.mono_globals[name] = std::move(vals);
    } else {
      std::vector<Value> vals;
      for (std::int64_t p = 0; p < config.nprocs; ++p) {
        if (!ran[static_cast<std::size_t>(p)]) continue;
        for (std::int64_t c = 0; c < slot.size; ++c)
          vals.push_back(machine.peek(p, slot.addr + c));
      }
      obs.poly_globals[name] = std::move(vals);
    }
  }
  return obs;
}

}  // namespace

bool Observed::operator==(const Observed& o) const {
  if (ran != o.ran) return false;
  for (std::size_t p = 0; p < ran.size(); ++p)
    if (ran[p] && !(results[p] == o.results[p])) return false;
  return poly_globals == o.poly_globals && mono_globals == o.mono_globals;
}

bool Observed::equivalent_unordered(const Observed& o) const {
  auto key = [](const Value& v) {
    return std::pair<int, double>(static_cast<int>(v.kind),
                                  v.is_int() ? static_cast<double>(v.i) : v.f);
  };
  auto multiset_of = [&](const Observed& obs) {
    std::vector<std::pair<int, double>> m;
    for (std::size_t p = 0; p < obs.ran.size(); ++p)
      if (obs.ran[p]) m.push_back(key(obs.results[p]));
    std::sort(m.begin(), m.end());
    return m;
  };
  if (multiset_of(*this) != multiset_of(o)) return false;
  return mono_globals == o.mono_globals;
}

std::string Observed::to_string() const {
  std::ostringstream os;
  os << "results:";
  for (std::size_t p = 0; p < ran.size(); ++p)
    os << " " << (ran[p] ? results[p].to_string() : std::string("-"));
  for (const auto& [name, vals] : mono_globals) {
    os << " | mono " << name << ":";
    for (const Value& v : vals) os << " " << v.to_string();
  }
  for (const auto& [name, vals] : poly_globals) {
    os << " | " << name << ":";
    for (const Value& v : vals) os << " " << v.to_string();
  }
  return os.str();
}

void write_json_file(const std::string& json, const std::string& what,
                     const std::string& path) {
  if (path == "-") {
    std::fputs(json.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error(cat("cannot write ", what, " to '", path, "'"));
  out << json;
  if (!out.flush())
    throw std::runtime_error(cat("failed writing ", what, " to '", path, "'"));
}

void write_convert_trace(const core::ConvertStats& stats,
                         const std::string& path) {
  write_json_file(core::to_json(stats), "convert trace", path);
}

void write_pass_timings(const telemetry::PipelineTrace& trace,
                        const std::string& path) {
  write_json_file(trace.to_json(), "pass timings", path);
}

void write_simd_trace(const simd::SimdMachine& machine,
                      const std::string& path) {
  write_json_file(simd::to_json(machine), "simd trace", path);
}

std::int64_t seed_input(std::uint64_t seed, std::int64_t pe) {
  Rng rng(seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(pe + 1)));
  return static_cast<std::int64_t>(rng.next_below(97));
}

Observed observe_simd(const simd::SimdMachine& machine,
                      const Compiled& compiled,
                      const mimd::RunConfig& config) {
  std::vector<bool> ran(static_cast<std::size_t>(config.nprocs));
  for (std::int64_t p = 0; p < config.nprocs; ++p)
    ran[static_cast<std::size_t>(p)] = machine.ever_ran(p);
  return observe(machine, compiled, config, ran);
}

Observed run_oracle(const Compiled& compiled, const mimd::RunConfig& config,
                    std::uint64_t seed, mimd::MimdStats* stats_out) {
  ir::CostModel cost;
  mimd::MimdMachine machine(compiled.graph, cost, config);
  seed_machine(machine, compiled, config, seed);
  machine.run();
  if (stats_out) *stats_out = machine.stats();
  std::vector<bool> ran(static_cast<std::size_t>(config.nprocs));
  for (std::int64_t p = 0; p < config.nprocs; ++p)
    ran[static_cast<std::size_t>(p)] = machine.ever_ran(p);
  return observe(machine, compiled, config, ran);
}

Observed run_simd(const Compiled& compiled, const core::ConvertResult& conversion,
                  const mimd::RunConfig& config, std::uint64_t seed,
                  const ir::CostModel& cost, const codegen::CodegenOptions& cg,
                  simd::SimdStats* stats_out,
                  std::vector<std::int64_t>* visits_out) {
  codegen::SimdProgram prog =
      codegen::generate(conversion.automaton, conversion.graph, cost, cg);
  auto machine = simd::make_machine(prog, cost, config);
  seed_machine(*machine, compiled, config, seed);
  machine->run();
  if (stats_out) *stats_out = machine->stats();
  if (visits_out) *visits_out = machine->state_visits();
  std::vector<bool> ran(static_cast<std::size_t>(config.nprocs));
  for (std::int64_t p = 0; p < config.nprocs; ++p)
    ran[static_cast<std::size_t>(p)] = machine->ever_ran(p);
  return observe(*machine, compiled, config, ran);
}

}  // namespace msc::driver
