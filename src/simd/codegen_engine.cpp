// Translation-cache SIMD engine (DESIGN.md §11). The interpretive engines
// pay per-SOp dispatch, guard resolution, and cycle arithmetic on every
// broadcast; this engine runs the pre-translated form from
// codegen/translate.cpp instead:
//
//  - per fused same-guard group, the enabled-PE set is gathered ONCE into
//    a flat ascending list (the reference engine's 0..nprocs scan order)
//    and the group's precomputed cycle aggregates are charged in O(1);
//  - the folded host stream is dispatched op-major — threaded
//    computed-goto dispatch under GCC/Clang, a switch loop elsewhere —
//    with a tight per-opcode inner loop over the flat PE list;
//  - immediate-fused ops (BinImm, LdLImm, …) skip the push/pop traffic of
//    their unfused forms, and constant folding already removed whole runs
//    of ops at translation time (stats still charge the originals).
//
// Op-major order (instruction outer, PE inner) is what keeps faults and
// cross-PE side effects bit-identical to the reference engine: the n-th
// broadcast reaches PE i before PE j > i, and no PE sees broadcast n+1
// until every PE saw n.
//
// Under a vector host ISA the folded stream of each TGroup is additionally
// lowered once (lanes.cpp) into whole-lane code: the group charge is
// unchanged, the enable set becomes the OR of the guard's occ_ words, and
// LaneExecutor evaluates each folded op across all enabled PEs at a time.
// Low-occupancy groups (enabled*8 < lane width) fall back to the flat-list
// path above, which is the same observable machine.
#include "msc/simd/machine.hpp"

#include "msc/support/str.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::TGroup;
using codegen::TOp;
using codegen::TOpKind;
using codegen::TransState;
using core::MetaId;
using ir::kNoState;
using ir::MachineFault;
using ir::StateId;

CodegenSimdMachine::CodegenSimdMachine(const codegen::SimdProgram& program,
                                       const ir::CostModel& cost,
                                       const mimd::RunConfig& config)
    : OccupancySimdMachine(program, cost, config),
      trans_(codegen::translate(program, cost)) {}

void CodegenSimdMachine::gather_enabled(
    const std::vector<StateId>& guard_states) {
  enabled_scratch_.clear();
  occupied_scratch_.clear();
  for (StateId s : guard_states)
    if (occ_count_[static_cast<std::size_t>(s)] != 0)
      occupied_scratch_.push_back(s);
  if (occupied_scratch_.empty()) return;

  if (occupied_scratch_.size() == 1) {
    std::size_t s = static_cast<std::size_t>(occupied_scratch_[0]);
    const DynBitset& pes = occ_[s];
    std::size_t i = pes.first();
    for (std::int64_t left = occ_count_[s];;) {
      enabled_scratch_.push_back(static_cast<std::int64_t>(i));
      if (--left == 0) break;
      i = pes.next(i);
    }
  } else {
    // Disjoint per-state PE sets: k-way merge in ascending PE id.
    cursor_scratch_.clear();
    for (StateId s : occupied_scratch_) {
      const DynBitset& pes = occ_[static_cast<std::size_t>(s)];
      cursor_scratch_.push_back(
          {&pes, pes.first(), occ_count_[static_cast<std::size_t>(s)]});
    }
    while (!cursor_scratch_.empty()) {
      std::size_t best = 0;
      for (std::size_t k = 1; k < cursor_scratch_.size(); ++k)
        if (cursor_scratch_[k].pos < cursor_scratch_[best].pos) best = k;
      OccCursor& c = cursor_scratch_[best];
      enabled_scratch_.push_back(static_cast<std::int64_t>(c.pos));
      if (--c.left == 0) {
        cursor_scratch_.erase(cursor_scratch_.begin() +
                              static_cast<std::ptrdiff_t>(best));
      } else {
        c.pos = c.pes->next(c.pos);
      }
    }
  }
}

void CodegenSimdMachine::exec_state(const MetaCode& mc) {
  const TransState& ts = trans_->states[static_cast<std::size_t>(mc.id)];
  if (isa_ != SimdIsa::Scalar) {
    exec_state_lanes(mc, ts);
    return;
  }
  for (const TGroup& g : ts.groups) {
    // One charge per group visit: the aggregates were computed from the
    // ORIGINAL ops, so the totals equal the interpretive engines' per-op
    // accounting exactly.
    stats_.control_cycles += g.control_cost;
    ++stats_.guard_switches;
    stats_.offered_pe_cycles += g.cost_sum * alive_;
    gather_enabled(g.guard_states);
    stats_.busy_pe_cycles +=
        g.cost_sum * static_cast<std::int64_t>(enabled_scratch_.size());
    if (!enabled_scratch_.empty() && !g.code.empty())
      run_ops(g.code.data(), g.code.data() + g.code.size());
  }
  commit();
}

const LanePlan& CodegenSimdMachine::plan_for(MetaId id, const TransState& ts) {
  if (lane_plans_.size() != trans_->states.size())
    lane_plans_.resize(trans_->states.size());
  auto& slot = lane_plans_[static_cast<std::size_t>(id)];
  if (!slot) slot = std::make_unique<LanePlan>(build_lane_plan(ts));
  return *slot;
}

void CodegenSimdMachine::exec_state_lanes(const MetaCode& mc,
                                          const TransState& ts) {
  const LanePlan& plan = plan_for(mc.id, ts);
  for (std::size_t gi = 0; gi < ts.groups.size(); ++gi) {
    const TGroup& g = ts.groups[gi];
    // Identical charges to the flat-list path: the aggregates cover the
    // group regardless of which backend executes it.
    stats_.control_cycles += g.control_cost;
    ++stats_.guard_switches;
    stats_.offered_pe_cycles += g.cost_sum * alive_;
    const std::int64_t enabled = build_lane_mask(g.guard_states);
    stats_.busy_pe_cycles += g.cost_sum * enabled;
    if (enabled == 0 || g.code.empty()) continue;
    cur_group_ = &g;
    if (enabled * 8 < lanes_.width()) {
      // Sparse occupancy: whole-lane work would touch mostly-disabled
      // elements; the flat-list path is the same observable machine.
      lane_scalar_span(0, static_cast<std::int32_t>(g.code.size()),
                       lane_mask_.data(), lane_mask_.size());
    } else {
      lane_executor().run(plan.runs[gi], lane_mask_.data(), *this);
    }
  }
  cur_group_ = nullptr;
  commit();
}

void CodegenSimdMachine::lane_scalar_span(std::int32_t first, std::int32_t end,
                                          const std::uint64_t* mask,
                                          std::size_t nwords) {
  // Gather the mask into the flat ascending PE list the op-major
  // dispatcher wants, then run the source subrange through it.
  enabled_scratch_.clear();
  for_each_lane_bit(mask, nwords, [&](std::size_t k) {
    enabled_scratch_.push_back(static_cast<std::int64_t>(k));
  });
  run_ops(cur_group_->code.data() + first, cur_group_->code.data() + end);
}

void CodegenSimdMachine::run_ops(const TOp* op, const TOp* const end) {
  if (op == end) return;
  const std::int64_t* const pe_begin = enabled_scratch_.data();
  const std::int64_t* const pe_end = pe_begin + enabled_scratch_.size();

#if defined(__GNUC__) || defined(__clang__)
#define MSC_TOP(name) l_##name:
#define MSC_NEXT()                                         \
  do {                                                     \
    if (++op == end) return;                               \
    goto* kDispatch[static_cast<std::size_t>(op->kind)];   \
  } while (0)
  // Label order must match codegen::TOpKind's declaration order.
  static const void* const kDispatch[] = {
      &&l_Exec,   &&l_PushI,  &&l_PushF,  &&l_LdLImm,    &&l_StLImm,
      &&l_LdMImm, &&l_StMImm, &&l_BinImm, &&l_SetPc,     &&l_CondSetPc,
      &&l_HaltPc, &&l_SpawnPc};
  goto* kDispatch[static_cast<std::size_t>(op->kind)];
#else
#define MSC_TOP(name) case TOpKind::name:
#define MSC_NEXT() break
  for (; op != end; ++op) {
    switch (op->kind) {
#endif

  MSC_TOP(Exec) {
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      ir::PeContext ctx{lanes_.pe_view(*p), &lanes_.stack(*p), *p,
                        config_.nprocs};
      ir::exec_instr(op->instr, ctx, *this);
    }
  }
  MSC_NEXT();

  MSC_TOP(PushI)
  MSC_TOP(PushF) {
    const Value v = op->instr.imm;
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p)
      lanes_.stack(*p).push_back(v);
  }
  MSC_NEXT();

  MSC_TOP(LdLImm) {
    const std::int64_t addr = op->instr.imm.as_int();
    // All PE locals share config_.local_mem_cells cells, so a bad address
    // faults at the first enabled PE either way.
    if (addr < 0 || addr >= config_.local_mem_cells)
      throw MachineFault(cat("local load out of range: ", addr));
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p)
      lanes_.stack(*p).push_back(lanes_.load(*p, addr));
  }
  MSC_NEXT();

  MSC_TOP(StLImm) {
    const std::int64_t addr = op->instr.imm.as_int();
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      // Underflow precedes the range check, as in the unfused pop order.
      Value v = ir::stack_pop(lanes_.stack(*p));
      if (addr < 0 || addr >= config_.local_mem_cells)
        throw MachineFault(cat("local store out of range: ", addr));
      lanes_.store(*p, addr, v);
    }
  }
  MSC_NEXT();

  MSC_TOP(LdMImm) {
    // No side effects and no stores in between: one load serves all PEs.
    const Value v = mono_load(op->instr.imm.as_int());
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p)
      lanes_.stack(*p).push_back(v);
  }
  MSC_NEXT();

  MSC_TOP(StMImm) {
    const std::int64_t addr = op->instr.imm.as_int();
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      Value v = ir::stack_pop(lanes_.stack(*p));
      mono_store(addr, v);
    }
  }
  MSC_NEXT();

  MSC_TOP(BinImm) {
    const Value imm = op->instr.imm;
    const ir::Opcode opc = op->instr.op;
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      auto& st = lanes_.stack(*p);
      if (st.empty()) throw MachineFault("operand stack underflow");
      st.back() = ir::eval_binary(opc, st.back(), imm);
    }
  }
  MSC_NEXT();

  MSC_TOP(SetPc) {
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      pes_[static_cast<std::size_t>(*p)].next_pc = op->a;
      moved_.push_back(*p);
    }
  }
  MSC_NEXT();

  MSC_TOP(CondSetPc) {
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      Value cond = ir::stack_pop(lanes_.stack(*p));
      pes_[static_cast<std::size_t>(*p)].next_pc = cond.truthy() ? op->a
                                                                 : op->b;
      moved_.push_back(*p);
    }
  }
  MSC_NEXT();

  MSC_TOP(HaltPc) {
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p) {
      pes_[static_cast<std::size_t>(*p)].next_pc = kNoState;
      moved_.push_back(*p);
    }
  }
  MSC_NEXT();

  MSC_TOP(SpawnPc) {
    for (const std::int64_t* p = pe_begin; p != pe_end; ++p)
      spawn_pe(pes_[static_cast<std::size_t>(*p)], *p, op->a, op->b);
  }
  MSC_NEXT();

#if !(defined(__GNUC__) || defined(__clang__))
    }
  }
#endif
#undef MSC_TOP
#undef MSC_NEXT
}

MetaId CodegenSimdMachine::next_state(const MetaCode& mc, DynBitset* apc) {
  *apc = apc_;
  return resolve_transition(mc, *apc);
}

}  // namespace msc::simd
