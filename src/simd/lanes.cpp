// Lane-major store, same-guard run lowering, and the lane executor.
//
// The lowering mirrors the scalar interpreter exactly: every source op
// either becomes a lane op whose per-element effect is eval_binary /
// exec_instr semantics, or joins a ScalarSpan the engine executes per PE
// in ascending id. A virtual stack of whole-lane buffers carries values
// between lane ops; Materialize flushes it (bottom-up, enabled PEs only)
// onto the real per-PE stacks at every lane/scalar boundary and at run
// end, so the observable stack state is identical to scalar execution.
#include "msc/simd/lanes.hpp"

#include <cstring>

#include "msc/support/str.hpp"

namespace msc::simd {

using codegen::SOp;
using codegen::SOpKind;
using codegen::TOp;
using codegen::TOpKind;
using ir::Instr;
using ir::MachineFault;
using ir::Opcode;

// ---------------------------------------------------------------- LaneStore

namespace {
std::int64_t round_up64(std::int64_t n) { return (n + 63) & ~std::int64_t{63}; }
}  // namespace

LaneStore::LaneStore(std::int64_t nprocs, std::int64_t cells)
    : nprocs_(nprocs),
      width_(round_up64(nprocs < 1 ? 1 : nprocs)),
      cells_(cells),
      tags_(static_cast<std::size_t>(width_ * cells), 0),
      ints_(static_cast<std::size_t>(width_ * cells), 0),
      floats_(static_cast<std::size_t>(width_ * cells), 0.0),
      stacks_(static_cast<std::size_t>(nprocs)) {}

void LaneStore::clear_pe(std::int64_t pe) {
  for (std::int64_t addr = 0; addr < cells_; ++addr) {
    const std::size_t at = static_cast<std::size_t>(addr * width_ + pe);
    tags_[at] = 0;
    ints_[at] = 0;
    floats_[at] = 0.0;
  }
  stacks_[static_cast<std::size_t>(pe)].clear();
}

void LaneStore::fill_int_lane(std::int64_t addr, const std::int64_t* vals,
                              std::int64_t n) {
  std::memcpy(int_lane(addr), vals, static_cast<std::size_t>(n) * sizeof(std::int64_t));
  std::memset(tag_lane(addr), 0, static_cast<std::size_t>(n));
  std::fill_n(float_lane(addr), static_cast<std::size_t>(n), 0.0);
}

// ------------------------------------------------------------ plan lowering

namespace {

/// Incremental lowering of one same-guard run. Tracks the virtual stack
/// depth and, per slot, the pushing constant (for PushI;LdL-style fusion —
/// the SOp-level analogue of the codegen translator's *Imm forms).
struct Lowerer {
  std::vector<LOp> code;
  std::vector<const Value*> known;  // parallel to virtual stack; null=opaque
  std::int32_t depth = 0;
  std::int32_t max_depth = 0;

  void push_known(const Value* v) {
    known.push_back(v);
    if (++depth > max_depth) max_depth = depth;
  }
  void pop_known(std::int32_t n) {
    known.resize(known.size() - static_cast<std::size_t>(n));
    depth -= n;
  }
  /// Is the top slot the direct result of the immediately preceding PushLane
  /// with a non-float constant (safe to fold into an address)?
  bool top_is_int_push() const {
    return !code.empty() && code.back().kind == LOpKind::PushLane &&
           known.back() != nullptr && !known.back()->is_float();
  }

  void emit(LOpKind k) { code.push_back(LOp{k}); }

  void scalar(std::int32_t src) {
    if (depth > 0) {
      emit(LOpKind::Materialize);
      pop_known(depth);
    }
    if (!code.empty() && code.back().kind == LOpKind::ScalarSpan &&
        code.back().src_end == src) {
      ++code.back().src_end;
      return;
    }
    LOp op{LOpKind::ScalarSpan};
    op.src = src;
    op.src_end = src + 1;
    code.push_back(op);
  }

  /// Mutate the trailing PushLane (the top slot's producer) into `k` with
  /// address `n` — removing the push and applying the consuming op in one.
  void fuse_push(LOpKind k, std::int64_t n) {
    code.back() = LOp{k};
    code.back().n = n;
  }

  void lower_instr(const Instr& in, std::int32_t src) {
    switch (in.op) {
      case Opcode::PushI:
      case Opcode::PushF: {
        LOp op{LOpKind::PushLane};
        op.instr = in;
        code.push_back(op);
        push_known(&in.imm);
        return;
      }
      case Opcode::Pop: {
        const std::int64_t n = in.imm.i;
        if (n >= 0 && n <= depth) {
          if (n > 0) {
            LOp op{LOpKind::PopLane};
            op.n = n;
            code.push_back(op);
            pop_known(static_cast<std::int32_t>(n));
          }
          return;
        }
        scalar(src);  // pops (or faults) against the real stacks
        return;
      }
      case Opcode::Dup:
        if (depth >= 1) {
          emit(LOpKind::DupLane);
          push_known(known.back());
        } else {
          scalar(src);
        }
        return;
      case Opcode::Swap:
        if (depth >= 2) {
          emit(LOpKind::SwapLane);
          std::swap(known[known.size() - 1], known[known.size() - 2]);
        } else {
          scalar(src);
        }
        return;
      case Opcode::LdL:
        if (top_is_int_push()) {
          fuse_push(LOpKind::LoadLane, known.back()->i);
          known.back() = nullptr;
        } else if (depth >= 1) {
          emit(LOpKind::LdDynLane);
          known.back() = nullptr;
        } else {
          scalar(src);
        }
        return;
      case Opcode::StL:
        if (depth >= 2 && top_is_int_push()) {
          fuse_push(LOpKind::StoreLane, known.back()->i);
          pop_known(2);
        } else if (depth >= 2) {
          emit(LOpKind::StDynLane);
          pop_known(2);
        } else {
          scalar(src);
        }
        return;
      case Opcode::LdM:
        if (top_is_int_push()) {
          fuse_push(LOpKind::BroadcastMono, known.back()->i);
          known.back() = nullptr;
        } else if (depth >= 1) {
          emit(LOpKind::LdMDynLane);
          known.back() = nullptr;
        } else {
          scalar(src);
        }
        return;
      case Opcode::StM:
        if (depth >= 2 && top_is_int_push()) {
          fuse_push(LOpKind::StoreMono, known.back()->i);
          pop_known(2);
        } else if (depth >= 2) {
          emit(LOpKind::StMDynLane);
          pop_known(2);
        } else {
          scalar(src);
        }
        return;
      case Opcode::RouteLd:
        if (depth >= 2) {
          emit(LOpKind::RouteLdLane);
          pop_known(2);
          push_known(nullptr);
        } else {
          scalar(src);
        }
        return;
      case Opcode::RouteSt:
        if (depth >= 3) {
          emit(LOpKind::RouteStLane);
          pop_known(3);
        } else {
          scalar(src);
        }
        return;
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::BitNot:
      case Opcode::CastI:
      case Opcode::CastF:
        if (depth >= 1) {
          LOp op{LOpKind::UnLane};
          op.instr = in;
          code.push_back(op);
          known.back() = nullptr;
        } else {
          scalar(src);
        }
        return;
      case Opcode::ProcId:
        emit(LOpKind::ProcIdLane);
        push_known(nullptr);
        return;
      case Opcode::NProcs:
        emit(LOpKind::NProcsLane);
        push_known(nullptr);
        return;
      default:  // binary (Add…Shr, LAnd, LOr)
        if (depth >= 2 && !code.empty() &&
            code.back().kind == LOpKind::PushLane && known.back() != nullptr) {
          const Value imm = *known.back();
          code.back() = LOp{LOpKind::BinImmLane};
          code.back().instr.op = in.op;
          code.back().instr.imm = imm;
          pop_known(1);
          known.back() = nullptr;
        } else if (depth >= 2) {
          LOp op{LOpKind::BinLane};
          op.instr = in;
          code.push_back(op);
          pop_known(1);
          known.back() = nullptr;
        } else {
          scalar(src);
        }
        return;
    }
  }

  void lower_pc(LOpKind k, ir::StateId a, ir::StateId b, std::int32_t src) {
    if (k == LOpKind::CondSetPcLane && depth < 1) {
      scalar(src);  // condition sits on the real stacks
      return;
    }
    LOp op{k};
    op.a = a;
    op.b = b;
    code.push_back(op);
    if (k == LOpKind::CondSetPcLane) pop_known(1);
  }

  void lower_top(const TOp& t, std::int32_t src) {
    switch (t.kind) {
      case TOpKind::Exec:
        lower_instr(t.instr, src);
        return;
      case TOpKind::PushI:
      case TOpKind::PushF: {
        LOp op{LOpKind::PushLane};
        op.instr = t.instr;
        code.push_back(op);
        push_known(&t.instr.imm);
        return;
      }
      case TOpKind::LdLImm: {
        LOp op{LOpKind::LoadLane};
        op.n = t.instr.imm.i;
        code.push_back(op);
        push_known(nullptr);
        return;
      }
      case TOpKind::StLImm:
        if (depth >= 1) {
          LOp op{LOpKind::StoreLane};
          op.n = t.instr.imm.i;
          code.push_back(op);
          pop_known(1);
        } else {
          scalar(src);
        }
        return;
      case TOpKind::LdMImm: {
        LOp op{LOpKind::BroadcastMono};
        op.n = t.instr.imm.i;
        code.push_back(op);
        push_known(nullptr);
        return;
      }
      case TOpKind::StMImm:
        if (depth >= 1) {
          LOp op{LOpKind::StoreMono};
          op.n = t.instr.imm.i;
          code.push_back(op);
          pop_known(1);
        } else {
          scalar(src);
        }
        return;
      case TOpKind::BinImm:
        if (depth >= 1) {
          LOp op{LOpKind::BinImmLane};
          op.instr = t.instr;
          code.push_back(op);
          known.back() = nullptr;
        } else {
          scalar(src);
        }
        return;
      case TOpKind::SetPc:
        lower_pc(LOpKind::SetPcLane, t.a, t.b, src);
        return;
      case TOpKind::CondSetPc:
        lower_pc(LOpKind::CondSetPcLane, t.a, t.b, src);
        return;
      case TOpKind::HaltPc:
        lower_pc(LOpKind::HaltPcLane, t.a, t.b, src);
        return;
      case TOpKind::SpawnPc:
        scalar(src);
        return;
    }
  }

  void finish() {
    if (depth > 0) {
      emit(LOpKind::Materialize);
      pop_known(depth);
    }
  }
};

std::int64_t sop_cost(const SOp& op, const ir::CostModel& cost) {
  switch (op.kind) {
    case SOpKind::Data: return cost.instr_cost(op.instr);
    case SOpKind::SetPc: return cost.jump;
    case SOpKind::CondSetPc: return cost.branch;
    case SOpKind::HaltPc: return cost.halt;
    case SOpKind::SpawnPc: return cost.spawn;
  }
  return 0;
}

}  // namespace

LanePlan build_lane_plan(const std::vector<SOp>& code,
                         const ir::CostModel& cost) {
  LanePlan plan;
  std::size_t i = 0;
  while (i < code.size()) {
    std::size_t end = i + 1;
    while (end < code.size() && !code[end].new_guard) ++end;
    LaneRun run;
    run.first = static_cast<std::int32_t>(i);
    run.end = static_cast<std::int32_t>(end);
    Lowerer lo;
    for (std::size_t k = i; k < end; ++k) {
      const SOp& op = code[k];
      run.cost_sum += sop_cost(op, cost);
      const auto src = static_cast<std::int32_t>(k);
      switch (op.kind) {
        case SOpKind::Data: lo.lower_instr(op.instr, src); break;
        case SOpKind::SetPc: lo.lower_pc(LOpKind::SetPcLane, op.a, op.b, src); break;
        case SOpKind::CondSetPc:
          lo.lower_pc(LOpKind::CondSetPcLane, op.a, op.b, src);
          break;
        case SOpKind::HaltPc: lo.lower_pc(LOpKind::HaltPcLane, op.a, op.b, src); break;
        case SOpKind::SpawnPc: lo.scalar(src); break;
      }
    }
    lo.finish();
    run.code = std::move(lo.code);
    run.max_depth = lo.max_depth;
    if (run.max_depth > plan.max_depth) plan.max_depth = run.max_depth;
    plan.runs.push_back(std::move(run));
    i = end;
  }
  return plan;
}

LanePlan build_lane_plan(const codegen::TransState& ts) {
  LanePlan plan;
  for (const codegen::TGroup& g : ts.groups) {
    LaneRun run;
    run.first = 0;
    run.end = static_cast<std::int32_t>(g.code.size());
    Lowerer lo;
    for (std::size_t k = 0; k < g.code.size(); ++k)
      lo.lower_top(g.code[k], static_cast<std::int32_t>(k));
    lo.finish();
    run.code = std::move(lo.code);
    run.max_depth = lo.max_depth;
    if (run.max_depth > plan.max_depth) plan.max_depth = run.max_depth;
    plan.runs.push_back(std::move(run));
  }
  return plan;
}

// ------------------------------------------------------------ LaneExecutor

LaneExecutor::LaneExecutor(LaneStore& store, ir::MemoryBus& bus,
                           std::int64_t nprocs, SimdIsa isa)
    : store_(store),
      bus_(bus),
      nprocs_(nprocs),
      width_(static_cast<std::size_t>(store.width())),
      nwords_(store.mask_words()),
      kernels_(&lane_kernels(isa)) {}

void LaneExecutor::ensure_depth(std::int32_t depth) {
  while (static_cast<std::int32_t>(bufs_.size()) < depth) {
    LaneBuf b;
    b.tag.assign(width_, 0);
    b.ival.assign(width_, 0);
    b.fval.assign(width_, 0.0);
    slot_buf_.push_back(static_cast<std::int32_t>(bufs_.size()));
    bufs_.push_back(std::move(b));
  }
}

LaneExecutor::LaneBuf& LaneExecutor::push_slot() {
  ++depth_;
  return slot(depth_ - 1);
}

void LaneExecutor::materialize(const std::uint64_t* mask) {
  for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
    auto& st = store_.stack(static_cast<std::int64_t>(k));
    for (std::int32_t s = 0; s < depth_; ++s)
      st.push_back(slot_value(slot(s), k));
  });
  depth_ = 0;
}

namespace {
inline bool elem_truthy(const LaneExecutor* /*unused*/, const std::uint8_t* tag,
                        const std::int64_t* iv, const double* fv,
                        std::size_t k) {
  return tag[k] != 0 ? fv[k] != 0.0 : iv[k] != 0;
}
}  // namespace

void LaneExecutor::run(const LaneRun& r, const std::uint64_t* mask,
                       LaneHost& host) {
  // +1: the gather ops (LdDynLane/LdMDynLane/RouteLdLane) push their
  // result above the operands before swapping it into place, so they
  // transiently need one slot beyond the plan's net stack depth.
  ensure_depth(r.max_depth + 1);
  depth_ = 0;
  const auto check_local = [&](std::int64_t addr, const char* what) {
    if (addr < 0 || addr >= store_.cells())
      throw MachineFault(cat(what, addr));
  };
  const auto fill_value = [&](LaneBuf& b, const Value& v) {
    std::memset(b.tag.data(), static_cast<int>(v.kind), width_);
    std::fill_n(b.ival.data(), width_, v.i);
    std::fill_n(b.fval.data(), width_, v.f);
  };
  const auto zero_buf = [&](LaneBuf& b) {
    std::memset(b.tag.data(), 0, width_);
    std::memset(b.ival.data(), 0, width_ * sizeof(std::int64_t));
    std::memset(b.fval.data(), 0, width_ * sizeof(double));
  };

  for (const LOp& op : r.code) {
    switch (op.kind) {
      case LOpKind::PushLane:
        fill_value(push_slot(), op.instr.imm);
        break;
      case LOpKind::LoadLane: {
        check_local(op.n, "local load out of range: ");
        LaneBuf& b = push_slot();
        std::memcpy(b.tag.data(), store_.tag_lane(op.n), width_);
        std::memcpy(b.ival.data(), store_.int_lane(op.n),
                    width_ * sizeof(std::int64_t));
        std::memcpy(b.fval.data(), store_.float_lane(op.n),
                    width_ * sizeof(double));
        break;
      }
      case LOpKind::StoreLane: {
        check_local(op.n, "local store out of range: ");
        LaneBuf& b = slot(depth_ - 1);
        std::uint8_t* tl = store_.tag_lane(op.n);
        std::int64_t* il = store_.int_lane(op.n);
        double* fl = store_.float_lane(op.n);
        for (std::size_t w = 0; w < nwords_; ++w) {
          const std::uint64_t m = mask[w];
          if (m == 0) continue;
          const std::size_t base = w * 64;
          if (m == ~std::uint64_t{0}) {
            std::memcpy(tl + base, b.tag.data() + base, 64);
            std::memcpy(il + base, b.ival.data() + base, 64 * sizeof(std::int64_t));
            std::memcpy(fl + base, b.fval.data() + base, 64 * sizeof(double));
          } else {
            std::uint64_t mm = m;
            while (mm != 0) {
              const std::size_t k = base + static_cast<std::size_t>(__builtin_ctzll(mm));
              tl[k] = b.tag[k];
              il[k] = b.ival[k];
              fl[k] = b.fval[k];
              mm &= mm - 1;
            }
          }
        }
        --depth_;
        break;
      }
      case LOpKind::BroadcastMono:
        fill_value(push_slot(), bus_.mono_load(op.n));
        break;
      case LOpKind::StoreMono: {
        LaneBuf& b = slot(depth_ - 1);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          bus_.mono_store(op.n, slot_value(b, k));
        });
        --depth_;
        break;
      }
      case LOpKind::LdDynLane: {
        LaneBuf& addr = slot(depth_ - 1);
        LaneBuf& dst = push_slot();
        zero_buf(dst);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          const std::int64_t a = slot_value(addr, k).as_int();
          check_local(a, "local load out of range: ");
          dst.tag[k] = store_.tag_lane(a)[k];
          dst.ival[k] = store_.int_lane(a)[k];
          dst.fval[k] = store_.float_lane(a)[k];
        });
        std::swap(slot_buf_[static_cast<std::size_t>(depth_ - 1)],
                  slot_buf_[static_cast<std::size_t>(depth_ - 2)]);
        --depth_;
        break;
      }
      case LOpKind::StDynLane: {
        LaneBuf& addr = slot(depth_ - 1);
        LaneBuf& val = slot(depth_ - 2);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          const std::int64_t a = slot_value(addr, k).as_int();
          check_local(a, "local store out of range: ");
          store_.tag_lane(a)[k] = val.tag[k];
          store_.int_lane(a)[k] = val.ival[k];
          store_.float_lane(a)[k] = val.fval[k];
        });
        depth_ -= 2;
        break;
      }
      case LOpKind::LdMDynLane: {
        LaneBuf& addr = slot(depth_ - 1);
        LaneBuf& dst = push_slot();
        zero_buf(dst);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          const Value v = bus_.mono_load(slot_value(addr, k).as_int());
          dst.tag[k] = static_cast<std::uint8_t>(v.kind);
          dst.ival[k] = v.i;
          dst.fval[k] = v.f;
        });
        std::swap(slot_buf_[static_cast<std::size_t>(depth_ - 1)],
                  slot_buf_[static_cast<std::size_t>(depth_ - 2)]);
        --depth_;
        break;
      }
      case LOpKind::StMDynLane: {
        LaneBuf& addr = slot(depth_ - 1);
        LaneBuf& val = slot(depth_ - 2);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          bus_.mono_store(slot_value(addr, k).as_int(), slot_value(val, k));
        });
        depth_ -= 2;
        break;
      }
      case LOpKind::RouteLdLane: {
        LaneBuf& proc = slot(depth_ - 1);
        LaneBuf& addr = slot(depth_ - 2);
        LaneBuf& dst = push_slot();
        zero_buf(dst);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          const Value v = bus_.route_load(slot_value(proc, k).as_int(),
                                          slot_value(addr, k).as_int());
          dst.tag[k] = static_cast<std::uint8_t>(v.kind);
          dst.ival[k] = v.i;
          dst.fval[k] = v.f;
        });
        std::swap(slot_buf_[static_cast<std::size_t>(depth_ - 1)],
                  slot_buf_[static_cast<std::size_t>(depth_ - 3)]);
        depth_ -= 2;
        break;
      }
      case LOpKind::RouteStLane: {
        LaneBuf& proc = slot(depth_ - 1);
        LaneBuf& addr = slot(depth_ - 2);
        LaneBuf& val = slot(depth_ - 3);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          bus_.route_store(slot_value(proc, k).as_int(),
                           slot_value(addr, k).as_int(), slot_value(val, k));
        });
        depth_ -= 3;
        break;
      }
      case LOpKind::BinLane: {
        LaneBuf& b = slot(depth_ - 1);
        LaneBuf& a = slot(depth_ - 2);
        kernels_->bin(op.instr.op, a.tag.data(), a.ival.data(), a.fval.data(),
                      b.tag.data(), b.ival.data(), b.fval.data(), a.tag.data(),
                      a.ival.data(), a.fval.data(), mask, width_);
        --depth_;
        break;
      }
      case LOpKind::BinImmLane: {
        LaneBuf& a = slot(depth_ - 1);
        kernels_->bin_imm(op.instr.op, a.tag.data(), a.ival.data(),
                          a.fval.data(), op.instr.imm, a.tag.data(),
                          a.ival.data(), a.fval.data(), mask, width_);
        break;
      }
      case LOpKind::UnLane: {
        LaneBuf& a = slot(depth_ - 1);
        kernels_->un(op.instr.op, a.tag.data(), a.ival.data(), a.fval.data(),
                     a.tag.data(), a.ival.data(), a.fval.data(), mask, width_);
        break;
      }
      case LOpKind::DupLane: {
        LaneBuf& dst = push_slot();
        LaneBuf& src = slot(depth_ - 2);
        std::memcpy(dst.tag.data(), src.tag.data(), width_);
        std::memcpy(dst.ival.data(), src.ival.data(), width_ * sizeof(std::int64_t));
        std::memcpy(dst.fval.data(), src.fval.data(), width_ * sizeof(double));
        break;
      }
      case LOpKind::SwapLane:
        std::swap(slot_buf_[static_cast<std::size_t>(depth_ - 1)],
                  slot_buf_[static_cast<std::size_t>(depth_ - 2)]);
        break;
      case LOpKind::PopLane:
        depth_ -= static_cast<std::int32_t>(op.n);
        break;
      case LOpKind::ProcIdLane: {
        LaneBuf& b = push_slot();
        std::memset(b.tag.data(), 0, width_);
        for (std::size_t k = 0; k < width_; ++k)
          b.ival[k] = static_cast<std::int64_t>(k);
        std::memset(b.fval.data(), 0, width_ * sizeof(double));
        break;
      }
      case LOpKind::NProcsLane:
        fill_value(push_slot(), Value::of_int(nprocs_));
        break;
      case LOpKind::SetPcLane:
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          host.lane_set_next_pc(static_cast<std::int64_t>(k), op.a);
        });
        break;
      case LOpKind::CondSetPcLane: {
        LaneBuf& c = slot(depth_ - 1);
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          const bool t =
              elem_truthy(this, c.tag.data(), c.ival.data(), c.fval.data(), k);
          host.lane_set_next_pc(static_cast<std::int64_t>(k), t ? op.a : op.b);
        });
        --depth_;
        break;
      }
      case LOpKind::HaltPcLane:
        for_each_lane_bit(mask, nwords_, [&](std::size_t k) {
          host.lane_set_next_pc(static_cast<std::int64_t>(k), ir::kNoState);
        });
        break;
      case LOpKind::Materialize:
        materialize(mask);
        break;
      case LOpKind::ScalarSpan:
        host.lane_scalar_span(op.src, op.src_end, mask, nwords_);
        break;
    }
  }
}

}  // namespace msc::simd
