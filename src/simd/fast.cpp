// Occupancy-indexed interpretive SIMD engine. Host cost per broadcast is
// proportional to the PEs the guard actually enables, not to nprocs:
//
//  - occ_[s] (maintained in occupancy.cpp) holds the ids of the PEs
//    sitting in MIMD state s, so a broadcast walks occ_[s] for the
//    occupied guard states only. Bitset order makes multi-PE side effects
//    (mono/router stores) land in ascending PE id — the same order the
//    reference engine's 0..nprocs scan uses, hence bit-identical memories.
//  - apc_ (the aggregate pc), alive_, and the spawn pool free_ are
//    maintained at the pc commit of each meta state instead of by the
//    reference engine's full scans per step.
//
// Within exec_state, pcs are frozen (lockstep semantics) — only next_pc
// changes, and each changed PE is recorded once in moved_.
#include "msc/simd/machine.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::SOp;
using codegen::SOpKind;
using core::MetaId;
using ir::kNoState;
using ir::StateId;

void FastSimdMachine::exec_op(const SOp& op, std::int64_t op_cost,
                              std::int64_t i) {
  Pe& pe = pes_[static_cast<std::size_t>(i)];
  stats_.busy_pe_cycles += op_cost;
  switch (op.kind) {
    case SOpKind::Data: {
      ir::PeContext ctx{&pe.local, &pe.stack, i, config_.nprocs};
      ir::exec_instr(op.instr, ctx, *this);
      break;
    }
    case SOpKind::SetPc:
      pe.next_pc = op.a;
      moved_.push_back(i);
      break;
    case SOpKind::CondSetPc: {
      Value cond = ir::stack_pop(pe.stack);
      pe.next_pc = cond.truthy() ? op.a : op.b;
      moved_.push_back(i);
      break;
    }
    case SOpKind::HaltPc:
      pe.next_pc = kNoState;
      moved_.push_back(i);
      break;
    case SOpKind::SpawnPc:
      spawn_pe(pe, i, op.a, op.b);
      break;
  }
}

void FastSimdMachine::exec_state(const MetaCode& mc) {
  for (const SOp& op : mc.code) {
    // Enable-mask reprogramming boundaries are precomputed by codegen
    // (SOp::new_guard); the reference engine re-derives them at runtime.
    if (op.new_guard) {
      stats_.control_cycles += cost_.guard_switch;
      ++stats_.guard_switches;
    }
    std::int64_t op_cost = 0;
    switch (op.kind) {
      case SOpKind::Data: op_cost = cost_.instr_cost(op.instr); break;
      case SOpKind::SetPc: op_cost = cost_.jump; break;
      case SOpKind::CondSetPc: op_cost = cost_.branch; break;
      case SOpKind::HaltPc: op_cost = cost_.halt; break;
      case SOpKind::SpawnPc: op_cost = cost_.spawn; break;
    }
    stats_.control_cycles += op_cost;
    stats_.offered_pe_cycles += op_cost * alive_;

    // Broadcast to the occupied guard states only.
    occupied_scratch_.clear();
    for (StateId s : op.guard_states)
      if (occ_count_[static_cast<std::size_t>(s)] != 0)
        occupied_scratch_.push_back(s);
    if (occupied_scratch_.empty()) continue;  // nobody enabled: PEs idle

    if (occupied_scratch_.size() == 1) {
      // Count-limited traversal: stop after occ_count_ PEs instead of
      // scanning the bitset's trailing zero words for the npos sentinel.
      std::size_t s = static_cast<std::size_t>(occupied_scratch_[0]);
      const DynBitset& pes = occ_[s];
      std::size_t i = pes.first();
      for (std::int64_t left = occ_count_[s];;) {
        exec_op(op, op_cost, static_cast<std::int64_t>(i));
        if (--left == 0) break;
        i = pes.next(i);
      }
    } else {
      // Multi-state guard (CSI-induced data op). A PE sits in exactly one
      // MIMD state, so the per-state PE sets are disjoint: a k-way merge
      // of count-limited cursors visits the union in ascending PE id
      // (the reference engine's 0..nprocs order) without materializing it.
      cursor_scratch_.clear();
      for (StateId s : occupied_scratch_) {
        const DynBitset& pes = occ_[static_cast<std::size_t>(s)];
        cursor_scratch_.push_back(
            {&pes, pes.first(), occ_count_[static_cast<std::size_t>(s)]});
      }
      while (!cursor_scratch_.empty()) {
        std::size_t best = 0;
        for (std::size_t k = 1; k < cursor_scratch_.size(); ++k)
          if (cursor_scratch_[k].pos < cursor_scratch_[best].pos) best = k;
        OccCursor& c = cursor_scratch_[best];
        exec_op(op, op_cost, static_cast<std::int64_t>(c.pos));
        if (--c.left == 0) {
          cursor_scratch_.erase(cursor_scratch_.begin() +
                                static_cast<std::ptrdiff_t>(best));
        } else {
          c.pos = c.pes->next(c.pos);
        }
      }
    }
  }
  commit();
}

MetaId FastSimdMachine::next_state(const MetaCode& mc, DynBitset* apc) {
  *apc = apc_;
  return resolve_transition(mc, *apc);
}

}  // namespace msc::simd
