// Occupancy-indexed interpretive SIMD engine. Host cost per broadcast is
// proportional to the PEs the guard actually enables, not to nprocs:
//
//  - occ_[s] (maintained in occupancy.cpp) holds the ids of the PEs
//    sitting in MIMD state s, so a broadcast walks occ_[s] for the
//    occupied guard states only. Bitset order makes multi-PE side effects
//    (mono/router stores) land in ascending PE id — the same order the
//    reference engine's 0..nprocs scan uses, hence bit-identical memories.
//  - apc_ (the aggregate pc), alive_, and the spawn pool free_ are
//    maintained at the pc commit of each meta state instead of by the
//    reference engine's full scans per step.
//
// Under a vector host ISA (RunConfig::simd_isa resolved ≠ scalar) the
// engine executes whole lanes instead: each meta state's code is lowered
// once into maximal same-guard runs (lanes.cpp) whose enable mask is the
// OR of the guard's occ_ words, and LaneExecutor evaluates the run across
// all enabled PEs per op. Stats are charged per run with totals identical
// to the per-op path (guard/op costs aggregate over the run; alive_ and
// the enabled count are constant within a meta state). Low-occupancy runs
// (enabled*8 < lane width) fall back to the per-PE span path so sparse
// workloads never regress.
//
// Within exec_state, pcs are frozen (lockstep semantics) — only next_pc
// changes, and each changed PE is recorded once in moved_.
#include "msc/simd/machine.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::SOp;
using codegen::SOpKind;
using core::MetaId;
using ir::kNoState;
using ir::StateId;

void FastSimdMachine::exec_op(const SOp& op, std::int64_t i) {
  Pe& pe = pes_[static_cast<std::size_t>(i)];
  switch (op.kind) {
    case SOpKind::Data: {
      ir::PeContext ctx{lanes_.pe_view(i), &lanes_.stack(i), i, config_.nprocs};
      ir::exec_instr(op.instr, ctx, *this);
      break;
    }
    case SOpKind::SetPc:
      pe.next_pc = op.a;
      moved_.push_back(i);
      break;
    case SOpKind::CondSetPc: {
      Value cond = ir::stack_pop(lanes_.stack(i));
      pe.next_pc = cond.truthy() ? op.a : op.b;
      moved_.push_back(i);
      break;
    }
    case SOpKind::HaltPc:
      pe.next_pc = kNoState;
      moved_.push_back(i);
      break;
    case SOpKind::SpawnPc:
      spawn_pe(pe, i, op.a, op.b);
      break;
  }
}

void FastSimdMachine::exec_state(const MetaCode& mc) {
  if (isa_ != SimdIsa::Scalar) {
    exec_state_lanes(mc);
    return;
  }
  for (const SOp& op : mc.code) {
    // Enable-mask reprogramming boundaries are precomputed by codegen
    // (SOp::new_guard); the reference engine re-derives them at runtime.
    if (op.new_guard) {
      stats_.control_cycles += cost_.guard_switch;
      ++stats_.guard_switches;
    }
    std::int64_t op_cost = 0;
    switch (op.kind) {
      case SOpKind::Data: op_cost = cost_.instr_cost(op.instr); break;
      case SOpKind::SetPc: op_cost = cost_.jump; break;
      case SOpKind::CondSetPc: op_cost = cost_.branch; break;
      case SOpKind::HaltPc: op_cost = cost_.halt; break;
      case SOpKind::SpawnPc: op_cost = cost_.spawn; break;
    }
    stats_.control_cycles += op_cost;
    stats_.offered_pe_cycles += op_cost * alive_;

    // Broadcast to the occupied guard states only.
    occupied_scratch_.clear();
    for (StateId s : op.guard_states)
      if (occ_count_[static_cast<std::size_t>(s)] != 0)
        occupied_scratch_.push_back(s);
    if (occupied_scratch_.empty()) continue;  // nobody enabled: PEs idle

    if (occupied_scratch_.size() == 1) {
      // Count-limited traversal: stop after occ_count_ PEs instead of
      // scanning the bitset's trailing zero words for the npos sentinel.
      std::size_t s = static_cast<std::size_t>(occupied_scratch_[0]);
      const DynBitset& pes = occ_[s];
      std::size_t i = pes.first();
      for (std::int64_t left = occ_count_[s];;) {
        // Charge before executing, per PE — bit-identical to the reference
        // engine's accounting even if the op faults mid-broadcast.
        stats_.busy_pe_cycles += op_cost;
        exec_op(op, static_cast<std::int64_t>(i));
        if (--left == 0) break;
        i = pes.next(i);
      }
    } else {
      // Multi-state guard (CSI-induced data op). A PE sits in exactly one
      // MIMD state, so the per-state PE sets are disjoint: a k-way merge
      // of count-limited cursors visits the union in ascending PE id
      // (the reference engine's 0..nprocs order) without materializing it.
      cursor_scratch_.clear();
      for (StateId s : occupied_scratch_) {
        const DynBitset& pes = occ_[static_cast<std::size_t>(s)];
        cursor_scratch_.push_back(
            {&pes, pes.first(), occ_count_[static_cast<std::size_t>(s)]});
      }
      while (!cursor_scratch_.empty()) {
        std::size_t best = 0;
        for (std::size_t k = 1; k < cursor_scratch_.size(); ++k)
          if (cursor_scratch_[k].pos < cursor_scratch_[best].pos) best = k;
        OccCursor& c = cursor_scratch_[best];
        stats_.busy_pe_cycles += op_cost;
        exec_op(op, static_cast<std::int64_t>(c.pos));
        if (--c.left == 0) {
          cursor_scratch_.erase(cursor_scratch_.begin() +
                                static_cast<std::ptrdiff_t>(best));
        } else {
          c.pos = c.pes->next(c.pos);
        }
      }
    }
  }
  commit();
}

const LanePlan& FastSimdMachine::plan_for(const MetaCode& mc) {
  if (plans_.size() != prog_.states.size()) plans_.resize(prog_.states.size());
  auto& slot = plans_[static_cast<std::size_t>(mc.id)];
  if (!slot) slot = std::make_unique<LanePlan>(build_lane_plan(mc.code, cost_));
  return *slot;
}

void FastSimdMachine::exec_state_lanes(const MetaCode& mc) {
  const LanePlan& plan = plan_for(mc);
  cur_code_ = &mc.code;
  for (const LaneRun& run : plan.runs) {
    // Per-run charge, identical totals to the per-op path: each run is one
    // maximal same-guard span (first op carries new_guard), and alive_ /
    // the enabled count cannot change while a meta state executes.
    stats_.control_cycles += cost_.guard_switch + run.cost_sum;
    ++stats_.guard_switches;
    stats_.offered_pe_cycles += run.cost_sum * alive_;
    const SOp& lead = mc.code[static_cast<std::size_t>(run.first)];
    const std::int64_t enabled = build_lane_mask(lead.guard_states);
    if (enabled == 0) continue;  // nobody enabled: PEs idle
    stats_.busy_pe_cycles += run.cost_sum * enabled;
    if (enabled * 8 < lanes_.width()) {
      // Sparse occupancy: whole-lane work would touch mostly-disabled
      // elements; the per-PE span path is the same observable machine.
      lane_scalar_span(run.first, run.end, lane_mask_.data(),
                       lane_mask_.size());
    } else {
      lane_executor().run(run, lane_mask_.data(), *this);
    }
  }
  cur_code_ = nullptr;
  commit();
}

void FastSimdMachine::lane_scalar_span(std::int32_t first, std::int32_t end,
                                       const std::uint64_t* mask,
                                       std::size_t nwords) {
  // Op-outer / PE-inner in ascending PE id: the reference scan order.
  for (std::int32_t j = first; j < end; ++j) {
    const SOp& op = (*cur_code_)[static_cast<std::size_t>(j)];
    for_each_lane_bit(mask, nwords, [&](std::size_t k) {
      exec_op(op, static_cast<std::int64_t>(k));
    });
  }
}

MetaId FastSimdMachine::next_state(const MetaCode& mc, DynBitset* apc) {
  *apc = apc_;
  return resolve_transition(mc, *apc);
}

}  // namespace msc::simd
