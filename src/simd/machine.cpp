// Engine-independent SIMD machine substrate: construction, memory access,
// the step() skeleton, and the §3.2 transition-table lookup. The two
// per-broadcast hot paths live in reference.cpp and fast.cpp.
#include "msc/simd/machine.hpp"

#include <cstdio>
#include <stdexcept>

#include "msc/support/coverage.hpp"
#include "msc/support/metrics.hpp"
#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::TransKind;
using core::kNoMeta;
using core::MetaId;
using ir::kNoState;
using ir::MachineFault;

std::int64_t SimdMachine::validated_nprocs(const mimd::RunConfig& config) {
  if (config.nprocs <= 0) throw MachineFault("nprocs must be positive");
  if (config.active() > config.nprocs)
    throw MachineFault("initial_active exceeds nprocs");
  return config.nprocs;
}

SimdMachine::SimdMachine(const codegen::SimdProgram& program,
                         const ir::CostModel& cost, const mimd::RunConfig& config)
    : prog_(program),
      cost_(cost),
      config_(config),
      lanes_(validated_nprocs(config), config.local_mem_cells) {
  // Resolve the host execution backend up front so an unavailable explicit
  // request faults at construction, like any other bad RunConfig.
  try {
    isa_ = resolve_simd_isa(config_.simd_isa);
  } catch (const std::invalid_argument& e) {
    throw MachineFault(e.what());
  }
  pes_.resize(static_cast<std::size_t>(config_.nprocs));
  visits_.assign(prog_.states.size(), 0);
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    if (i < config_.active()) {
      // All initial PEs begin in the MIMD start state (SPMD restriction).
      // The start meta state has exactly that one member.
      const DynBitset& members = prog_.states[prog_.start].members;
      pe.pc = static_cast<ir::StateId>(members.first());
      pe.ever_ran = true;
    }
  }
  mono_.assign(static_cast<std::size_t>(config_.mono_mem_cells), Value{});
}

void SimdMachine::check_local(std::int64_t proc, std::int64_t addr) const {
  if (proc < 0 || proc >= config_.nprocs)
    throw MachineFault(cat("PE index out of range: ", proc));
  if (addr < 0 || addr >= config_.local_mem_cells)
    throw MachineFault(cat("local address out of range: ", addr));
}

void SimdMachine::poke(std::int64_t proc, std::int64_t addr, Value v) {
  check_local(proc, addr);
  lanes_.store(proc, addr, v);
}

Value SimdMachine::peek(std::int64_t proc, std::int64_t addr) const {
  check_local(proc, addr);
  return lanes_.load(proc, addr);
}

void SimdMachine::fill_lane(std::int64_t addr,
                            const std::vector<std::int64_t>& vals) {
  check_local(0, addr);
  lanes_.fill_int_lane(addr, vals.data(), config_.nprocs);
}

void SimdMachine::poke_mono(std::int64_t addr, Value v) {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  mono_[static_cast<std::size_t>(addr)] = v;
}

Value SimdMachine::peek_mono(std::int64_t addr) const {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  return mono_[static_cast<std::size_t>(addr)];
}

Value SimdMachine::mono_load(std::int64_t addr) { return peek_mono(addr); }
void SimdMachine::mono_store(std::int64_t addr, Value v) { poke_mono(addr, v); }
Value SimdMachine::route_load(std::int64_t proc, std::int64_t addr) {
  ++stats_.router_ops;
  return peek(proc, addr);
}
void SimdMachine::route_store(std::int64_t proc, std::int64_t addr, Value v) {
  ++stats_.router_ops;
  poke(proc, addr, v);
}

DynBitset SimdMachine::aggregate_pc() const {
  DynBitset apc(prog_.mimd_states);
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) apc.set(pe.pc);
  return apc;
}

std::int64_t SimdMachine::alive_count() const {
  std::int64_t n = 0;
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) ++n;
  return n;
}

bool SimdMachine::any_alive() const {
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) return true;
  return false;
}

MetaId SimdMachine::resolve_transition(const MetaCode& mc,
                                       const DynBitset& apc) {
  stats_.control_cycles += prog_.transition_cost(mc, cost_);
  if (mc.needs_apc || mc.trans == TransKind::Multiway) ++stats_.global_ors;

  if (apc.empty()) return kNoMeta;  // every process finished: exit

  DynBitset key = prog_.transition_key(apc);
  switch (mc.trans) {
    case TransKind::Direct: {
      const DynBitset& tm = prog_.states[mc.direct_target].members;
      if (key.is_subset_of(tm)) return mc.direct_target;
      break;  // occupancy left the expected set (e.g. everyone reached a
              // barrier out of a PaperPrune direct chain): try the rescue
    }
    case TransKind::Multiway: {
      std::int32_t idx = mc.sw.lookup(key.fold64());
      if (idx >= 0 && mc.case_keys[static_cast<std::size_t>(idx)] == key)
        return mc.case_targets[static_cast<std::size_t>(idx)];
      if (mc.fallback != kNoMeta) return mc.fallback;
      break;  // fall through to the rescue lookup
    }
    case TransKind::Exit:
      break;
  }
  // Rescue: resolve by exact member set (PaperPrune barrier/halt corner
  // cases and fold collisions; see DESIGN.md).
  auto it = prog_.index.find(key);
  if (it != prog_.index.end()) {
    ++stats_.rescue_transitions;
    coverage_hit(cov::kSimdRescue, 1);
    return it->second;
  }
  throw MachineFault(cat("no meta-state transition for aggregate pc ",
                         apc.to_string(), " from meta state ", mc.id));
}

bool SimdMachine::step() {
  if (finished_) return false;
  if (cur_ == kNoMeta) {  // first step
    cur_ = prog_.start;
    if (!any_alive()) {
      finished_ = true;
      return false;
    }
  }
  const MetaCode& mc = prog_.states[cur_];
  ++visits_[cur_];
  // Tracer inputs are computed lazily: an untraced run pays no occupancy
  // or alive-count work here in either engine.
  if (tracer_) tracer_->on_state(cur_, occupancy(), alive_count());
  // Observability snapshot: deltas against `pre` are attributed to this
  // state after the transition resolves. One bool test when detached.
  const bool observe = profiling_ || trace_sink_ != nullptr;
  SimdStats pre;
  std::int64_t pre_alive = 0;
  if (observe) {
    pre = stats_;
    pre_alive = alive_count();
  }
  const MetaId executing = cur_;
  exec_state(mc);
  ++stats_.meta_transitions;
  if (stats_.meta_transitions > config_.max_blocks) throw mimd::Timeout();
  // One aggregate-pc computation per step, produced by next_state() and
  // reused for the tracer (the seed engine recomputed it three times).
  DynBitset apc;
  MetaId next = next_state(mc, &apc);
  if (tracer_) tracer_->on_transition(cur_, next, apc);
  if (observe) record_step(executing, pre, pre_alive);
  if (coverage_sink())
    coverage_hit(cov::kSimdTransitionKind, static_cast<std::uint64_t>(mc.trans));
  if (next == kNoMeta) {
    finished_ = true;
    // Fuzzer feature coverage: the finished run's guard-switch / spawn /
    // transition / global-or shape, bucketed (DESIGN.md §8).
    if (coverage_sink())
      coverage_hit(
          cov::kSimdRunShape,
          (std::uint64_t{coverage_bucket(
               static_cast<std::uint64_t>(stats_.guard_switches))}
           << 24) |
              (std::uint64_t{coverage_bucket(
                   static_cast<std::uint64_t>(stats_.spawns))}
               << 16) |
              (std::uint64_t{coverage_bucket(
                   static_cast<std::uint64_t>(stats_.meta_transitions))}
               << 8) |
              coverage_bucket(static_cast<std::uint64_t>(stats_.global_ors)));
    return false;
  }
  cur_ = next;
  return true;
}

void SimdMachine::record_step(MetaId state, const SimdStats& pre,
                              std::int64_t pre_alive) {
  const std::int64_t d_control = stats_.control_cycles - pre.control_cycles;
  const std::int64_t d_busy = stats_.busy_pe_cycles - pre.busy_pe_cycles;
  const std::int64_t d_offered =
      stats_.offered_pe_cycles - pre.offered_pe_cycles;
  const std::int64_t d_gor = stats_.global_ors - pre.global_ors;
  const std::int64_t d_guard = stats_.guard_switches - pre.guard_switches;
  const std::int64_t d_router = stats_.router_ops - pre.router_ops;
  const std::int64_t d_spawns = stats_.spawns - pre.spawns;
  if (profiling_) {
    StateProfile& p = profile_[static_cast<std::size_t>(state)];
    if (p.visits == 0 || pre_alive < p.enabled_min) p.enabled_min = pre_alive;
    if (pre_alive > p.enabled_max) p.enabled_max = pre_alive;
    ++p.visits;
    p.enabled_sum += pre_alive;
    std::uint32_t bucket =
        coverage_bucket(static_cast<std::uint64_t>(pre_alive));
    if (bucket >= StateProfile::kEnabledBuckets)
      bucket = StateProfile::kEnabledBuckets - 1;
    ++p.enabled_hist[bucket];
    p.control_cycles += d_control;
    p.busy_pe_cycles += d_busy;
    p.offered_pe_cycles += d_offered;
    p.global_ors += d_gor;
    p.guard_switches += d_guard;
    p.router_ops += d_router;
    p.spawns += d_spawns;
  }
  if (trace_sink_) {
    // Deterministic simulated timeline: ts/dur are control cycles, so the
    // file is byte-stable across hosts (golden-pinned in mscprof_test).
    trace_sink_->complete(
        cat("ms", state), "meta-state", telemetry::TraceSink::kSimdPid,
        /*tid=*/0, /*ts_us=*/pre.control_cycles, /*dur_us=*/d_control,
        {{"state", state},
         {"enabled_pes", pre_alive},
         {"occupied_states", static_cast<std::int64_t>(occupancy().count())},
         {"busy_pe_cycles", d_busy},
         {"offered_pe_cycles", d_offered},
         {"global_ors", d_gor},
         {"router_ops", d_router},
         {"guard_switches", d_guard},
         {"spawns", d_spawns}});
  }
}

void SimdMachine::run() {
  while (step()) {
  }
  publish_metrics();
}

void SimdMachine::publish_metrics() {
  if (metrics_published_) return;
  metrics_published_ = true;
  // Resolve each metric once per process (the registry hands back stable
  // references), then publish with relaxed atomic adds.
  using telemetry::Counter;
  using telemetry::Histogram;
  using telemetry::MetricsRegistry;
  MetricsRegistry& reg = MetricsRegistry::global();
  static Counter& runs = reg.counter("simd.runs");
  static Counter& transitions = reg.counter("simd.meta_transitions");
  static Counter& control = reg.counter("simd.control_cycles");
  static Counter& busy = reg.counter("simd.busy_pe_cycles");
  static Counter& offered = reg.counter("simd.offered_pe_cycles");
  static Counter& gors = reg.counter("simd.global_ors");
  static Counter& routers = reg.counter("simd.router_ops");
  static Counter& rescues = reg.counter("simd.rescue_transitions");
  static Histogram& util = reg.histogram(
      "simd.utilization_pct", {10, 20, 30, 40, 50, 60, 70, 80, 90});
  static telemetry::Gauge& isa_width = reg.gauge("simd.isa_lane_width");
  isa_width.set(simd_isa_lane_width(isa_));
  runs.add();
  transitions.add(stats_.meta_transitions);
  control.add(stats_.control_cycles);
  busy.add(stats_.busy_pe_cycles);
  offered.add(stats_.offered_pe_cycles);
  gors.add(stats_.global_ors);
  routers.add(stats_.router_ops);
  rescues.add(stats_.rescue_transitions);
  util.record(static_cast<std::int64_t>(stats_.utilization() * 100.0));
}

std::unique_ptr<SimdMachine> make_machine(const codegen::SimdProgram& program,
                                          const ir::CostModel& cost,
                                          const mimd::RunConfig& config) {
  if (config.engine == mimd::SimdEngine::Reference)
    return std::make_unique<ReferenceSimdMachine>(program, cost, config);
  if (config.engine == mimd::SimdEngine::Codegen)
    return std::make_unique<CodegenSimdMachine>(program, cost, config);
  return std::make_unique<FastSimdMachine>(program, cost, config);
}

mimd::SimdEngine parse_engine(const std::string& name) {
  if (name == "fast") return mimd::SimdEngine::Fast;
  if (name == "reference") return mimd::SimdEngine::Reference;
  if (name == "codegen") return mimd::SimdEngine::Codegen;
  throw std::invalid_argument(cat("unknown SIMD engine '", name,
                                  "' (expected fast|reference|codegen)"));
}

const char* engine_name(mimd::SimdEngine engine) {
  switch (engine) {
    case mimd::SimdEngine::Fast: return "fast";
    case mimd::SimdEngine::Reference: return "reference";
    case mimd::SimdEngine::Codegen: return "codegen";
  }
  return "?";
}

std::string to_json(const SimdMachine& machine) {
  const SimdStats& s = machine.stats();
  char util[32];
  std::snprintf(util, sizeof util, "%.6f", s.utilization());
  std::string json = cat(
      "{\n"
      "  \"engine\": \"", machine.engine_name(), "\",\n"
      "  \"isa\": \"", simd_isa_name(machine.isa()), "\",\n"
      "  \"isa_lane_width\": ", simd_isa_lane_width(machine.isa()), ",\n"
      "  \"meta_states\": ", machine.state_visits().size(), ",\n"
      "  \"meta_transitions\": ", s.meta_transitions, ",\n"
      "  \"control_cycles\": ", s.control_cycles, ",\n"
      "  \"busy_pe_cycles\": ", s.busy_pe_cycles, ",\n"
      "  \"offered_pe_cycles\": ", s.offered_pe_cycles, ",\n"
      "  \"utilization\": ", util, ",\n"
      "  \"guard_switches\": ", s.guard_switches, ",\n"
      "  \"global_ors\": ", s.global_ors, ",\n"
      "  \"rescue_transitions\": ", s.rescue_transitions, ",\n"
      "  \"router_ops\": ", s.router_ops, ",\n"
      "  \"spawns\": ", s.spawns, ",\n"
      "  \"visits\": [");
  const std::vector<std::int64_t>& visits = machine.state_visits();
  for (std::size_t i = 0; i < visits.size(); ++i)
    json += cat(i ? ", " : "", visits[i]);
  json += "]";
  if (machine.profiling()) {
    const std::vector<StateProfile>& prof = machine.profile();
    json += ",\n  \"profile\": [\n";
    for (std::size_t i = 0; i < prof.size(); ++i) {
      const StateProfile& p = prof[i];
      std::snprintf(util, sizeof util, "%.6f", p.utilization());
      json += cat(
          "    {\"state\": ", i,
          ", \"visits\": ", p.visits,
          ", \"enabled_min\": ", p.visits ? p.enabled_min : 0,
          ", \"enabled_max\": ", p.enabled_max,
          ", \"enabled_sum\": ", p.enabled_sum,
          ",\n     \"control_cycles\": ", p.control_cycles,
          ", \"busy_pe_cycles\": ", p.busy_pe_cycles,
          ", \"offered_pe_cycles\": ", p.offered_pe_cycles,
          ", \"utilization\": ", util,
          ",\n     \"global_ors\": ", p.global_ors,
          ", \"guard_switches\": ", p.guard_switches,
          ", \"router_ops\": ", p.router_ops,
          ", \"spawns\": ", p.spawns,
          ",\n     \"enabled_hist\": [");
      for (int b = 0; b < StateProfile::kEnabledBuckets; ++b)
        json += cat(b ? ", " : "", p.enabled_hist[static_cast<std::size_t>(b)]);
      json += cat("]}", i + 1 < prof.size() ? "," : "", "\n");
    }
    json += "  ]";
  }
  json += "\n}\n";
  return json;
}

}  // namespace msc::simd
