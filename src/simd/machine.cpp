#include "msc/simd/machine.hpp"

#include "msc/support/str.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::SOp;
using codegen::SOpKind;
using codegen::TransKind;
using core::kNoMeta;
using core::MetaId;
using ir::kNoState;
using ir::MachineFault;

SimdMachine::SimdMachine(const codegen::SimdProgram& program,
                         const ir::CostModel& cost, const mimd::RunConfig& config)
    : prog_(program), cost_(cost), config_(config) {
  if (config_.nprocs <= 0) throw MachineFault("nprocs must be positive");
  if (config_.active() > config_.nprocs)
    throw MachineFault("initial_active exceeds nprocs");
  pes_.resize(static_cast<std::size_t>(config_.nprocs));
  visits_.assign(prog_.states.size(), 0);
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    pe.local.assign(static_cast<std::size_t>(config_.local_mem_cells), Value{});
    if (i < config_.active()) {
      // All initial PEs begin in the MIMD start state (SPMD restriction).
      // The start meta state has exactly that one member.
      const DynBitset& members = prog_.states[prog_.start].members;
      pe.pc = static_cast<ir::StateId>(members.first());
      pe.ever_ran = true;
    }
  }
  mono_.assign(static_cast<std::size_t>(config_.mono_mem_cells), Value{});
}

void SimdMachine::check_local(std::int64_t proc, std::int64_t addr) const {
  if (proc < 0 || proc >= config_.nprocs)
    throw MachineFault(cat("PE index out of range: ", proc));
  if (addr < 0 || addr >= config_.local_mem_cells)
    throw MachineFault(cat("local address out of range: ", addr));
}

void SimdMachine::poke(std::int64_t proc, std::int64_t addr, Value v) {
  check_local(proc, addr);
  pes_[static_cast<std::size_t>(proc)].local[static_cast<std::size_t>(addr)] = v;
}

Value SimdMachine::peek(std::int64_t proc, std::int64_t addr) const {
  check_local(proc, addr);
  return pes_[static_cast<std::size_t>(proc)].local[static_cast<std::size_t>(addr)];
}

void SimdMachine::poke_mono(std::int64_t addr, Value v) {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  mono_[static_cast<std::size_t>(addr)] = v;
}

Value SimdMachine::peek_mono(std::int64_t addr) const {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  return mono_[static_cast<std::size_t>(addr)];
}

Value SimdMachine::mono_load(std::int64_t addr) { return peek_mono(addr); }
void SimdMachine::mono_store(std::int64_t addr, Value v) { poke_mono(addr, v); }
Value SimdMachine::route_load(std::int64_t proc, std::int64_t addr) {
  return peek(proc, addr);
}
void SimdMachine::route_store(std::int64_t proc, std::int64_t addr, Value v) {
  poke(proc, addr, v);
}

DynBitset SimdMachine::aggregate_pc() const {
  DynBitset apc(prog_.mimd_states);
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) apc.set(pe.pc);
  return apc;
}

void SimdMachine::exec_state(const MetaCode& mc) {
  std::int64_t alive_count = 0;
  for (Pe& pe : pes_) {
    pe.next_pc = pe.pc;
    if (alive(pe)) ++alive_count;
  }

  const DynBitset* prev_guard = nullptr;
  for (const SOp& op : mc.code) {
    // Re-programming the PE enable mask costs a broadcast of its own
    // whenever consecutive ops carry different guards (the `if (pc & …)`
    // boundaries of Listing 5).
    // (Charged to the control unit only: utilization remains the §2.4
    // divergence metric over instruction broadcasts.)
    if (!prev_guard || !(*prev_guard == op.guard)) {
      stats_.control_cycles += cost_.guard_switch;
      ++stats_.guard_switches;
    }
    prev_guard = &op.guard;
    // Single instruction broadcast: enabled PEs act, the rest idle.
    std::int64_t op_cost = 0;
    switch (op.kind) {
      case SOpKind::Data: op_cost = cost_.instr_cost(op.instr); break;
      case SOpKind::SetPc: op_cost = cost_.jump; break;
      case SOpKind::CondSetPc: op_cost = cost_.branch; break;
      case SOpKind::HaltPc: op_cost = cost_.halt; break;
      case SOpKind::SpawnPc: op_cost = cost_.spawn; break;
    }
    stats_.control_cycles += op_cost;
    stats_.offered_pe_cycles += op_cost * alive_count;

    for (std::int64_t i = 0; i < config_.nprocs; ++i) {
      Pe& pe = pes_[static_cast<std::size_t>(i)];
      if (!alive(pe) || !op.guard.test(pe.pc)) continue;
      stats_.busy_pe_cycles += op_cost;
      switch (op.kind) {
        case SOpKind::Data: {
          ir::PeContext ctx{&pe.local, &pe.stack, i, config_.nprocs};
          ir::exec_instr(op.instr, ctx, *this);
          break;
        }
        case SOpKind::SetPc:
          pe.next_pc = op.a;
          break;
        case SOpKind::CondSetPc: {
          Value cond = ir::stack_pop(pe.stack);
          pe.next_pc = cond.truthy() ? op.a : op.b;
          break;
        }
        case SOpKind::HaltPc:
          pe.next_pc = kNoState;
          break;
        case SOpKind::SpawnPc: {
          // Allocate the lowest-numbered free PE (free: not running and
          // not already claimed in this meta state).
          std::int64_t child = -1;
          for (std::int64_t c = 0; c < config_.nprocs; ++c) {
            const Pe& cp = pes_[static_cast<std::size_t>(c)];
            bool idle = cp.pc == kNoState && cp.next_pc == kNoState;
            bool fresh = config_.reuse_halted_pes || !cp.ever_ran;
            if (idle && fresh) {
              child = c;
              break;
            }
          }
          if (child < 0)
            throw MachineFault("spawn failed: no free processing element "
                               "(§3.2.5 assumes processes ≤ processors)");
          Pe& ch = pes_[static_cast<std::size_t>(child)];
          ch.local.assign(static_cast<std::size_t>(config_.local_mem_cells),
                          Value{});
          ch.stack.clear();
          ch.next_pc = op.a;
          ch.ever_ran = true;
          ++stats_.spawns;
          pe.next_pc = op.b;
          break;
        }
      }
    }
  }
  for (Pe& pe : pes_) pe.pc = pe.next_pc;
}

MetaId SimdMachine::next_state(const MetaCode& mc) {
  stats_.control_cycles += prog_.transition_cost(mc, cost_);
  if (mc.needs_apc || mc.trans == TransKind::Multiway) ++stats_.global_ors;

  DynBitset apc = aggregate_pc();
  if (apc.empty()) return kNoMeta;  // every process finished: exit

  DynBitset key = prog_.transition_key(apc);
  switch (mc.trans) {
    case TransKind::Direct: {
      const DynBitset& tm = prog_.states[mc.direct_target].members;
      if (key.is_subset_of(tm)) return mc.direct_target;
      break;  // occupancy left the expected set (e.g. everyone reached a
              // barrier out of a PaperPrune direct chain): try the rescue
    }
    case TransKind::Multiway: {
      std::int32_t idx = mc.sw.lookup(key.fold64());
      if (idx >= 0 && mc.case_keys[static_cast<std::size_t>(idx)] == key)
        return mc.case_targets[static_cast<std::size_t>(idx)];
      if (mc.fallback != kNoMeta) return mc.fallback;
      break;  // fall through to the rescue lookup
    }
    case TransKind::Exit:
      break;
  }
  // Rescue: resolve by exact member set (PaperPrune barrier/halt corner
  // cases and fold collisions; see DESIGN.md).
  auto it = prog_.index.find(key);
  if (it != prog_.index.end()) {
    ++stats_.rescue_transitions;
    return it->second;
  }
  throw MachineFault(cat("no meta-state transition for aggregate pc ",
                         apc.to_string(), " from meta state ", mc.id));
}

std::int64_t SimdMachine::alive_count() const {
  std::int64_t n = 0;
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) ++n;
  return n;
}

bool SimdMachine::step() {
  if (finished_) return false;
  if (cur_ == kNoMeta) {  // first step
    cur_ = prog_.start;
    if (aggregate_pc().empty()) {
      finished_ = true;
      return false;
    }
  }
  const MetaCode& mc = prog_.states[cur_];
  ++visits_[cur_];
  if (tracer_) tracer_->on_state(cur_, aggregate_pc(), alive_count());
  exec_state(mc);
  ++stats_.meta_transitions;
  if (stats_.meta_transitions > config_.max_blocks) throw mimd::Timeout();
  DynBitset apc_after = aggregate_pc();
  MetaId next = next_state(mc);
  if (tracer_) tracer_->on_transition(cur_, next, apc_after);
  if (next == kNoMeta) {
    finished_ = true;
    return false;
  }
  cur_ = next;
  return true;
}

void SimdMachine::run() {
  while (step()) {
  }
}

}  // namespace msc::simd
