// Engine-independent SIMD machine substrate: construction, memory access,
// the step() skeleton, and the §3.2 transition-table lookup. The two
// per-broadcast hot paths live in reference.cpp and fast.cpp.
#include "msc/simd/machine.hpp"

#include <cstdio>
#include <stdexcept>

#include "msc/support/coverage.hpp"
#include "msc/support/str.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::TransKind;
using core::kNoMeta;
using core::MetaId;
using ir::kNoState;
using ir::MachineFault;

SimdMachine::SimdMachine(const codegen::SimdProgram& program,
                         const ir::CostModel& cost, const mimd::RunConfig& config)
    : prog_(program), cost_(cost), config_(config) {
  if (config_.nprocs <= 0) throw MachineFault("nprocs must be positive");
  if (config_.active() > config_.nprocs)
    throw MachineFault("initial_active exceeds nprocs");
  pes_.resize(static_cast<std::size_t>(config_.nprocs));
  visits_.assign(prog_.states.size(), 0);
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    pe.local.assign(static_cast<std::size_t>(config_.local_mem_cells), Value{});
    if (i < config_.active()) {
      // All initial PEs begin in the MIMD start state (SPMD restriction).
      // The start meta state has exactly that one member.
      const DynBitset& members = prog_.states[prog_.start].members;
      pe.pc = static_cast<ir::StateId>(members.first());
      pe.ever_ran = true;
    }
  }
  mono_.assign(static_cast<std::size_t>(config_.mono_mem_cells), Value{});
}

void SimdMachine::check_local(std::int64_t proc, std::int64_t addr) const {
  if (proc < 0 || proc >= config_.nprocs)
    throw MachineFault(cat("PE index out of range: ", proc));
  if (addr < 0 || addr >= config_.local_mem_cells)
    throw MachineFault(cat("local address out of range: ", addr));
}

void SimdMachine::poke(std::int64_t proc, std::int64_t addr, Value v) {
  check_local(proc, addr);
  pes_[static_cast<std::size_t>(proc)].local[static_cast<std::size_t>(addr)] = v;
}

Value SimdMachine::peek(std::int64_t proc, std::int64_t addr) const {
  check_local(proc, addr);
  return pes_[static_cast<std::size_t>(proc)].local[static_cast<std::size_t>(addr)];
}

void SimdMachine::poke_mono(std::int64_t addr, Value v) {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  mono_[static_cast<std::size_t>(addr)] = v;
}

Value SimdMachine::peek_mono(std::int64_t addr) const {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  return mono_[static_cast<std::size_t>(addr)];
}

Value SimdMachine::mono_load(std::int64_t addr) { return peek_mono(addr); }
void SimdMachine::mono_store(std::int64_t addr, Value v) { poke_mono(addr, v); }
Value SimdMachine::route_load(std::int64_t proc, std::int64_t addr) {
  return peek(proc, addr);
}
void SimdMachine::route_store(std::int64_t proc, std::int64_t addr, Value v) {
  poke(proc, addr, v);
}

DynBitset SimdMachine::aggregate_pc() const {
  DynBitset apc(prog_.mimd_states);
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) apc.set(pe.pc);
  return apc;
}

std::int64_t SimdMachine::alive_count() const {
  std::int64_t n = 0;
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) ++n;
  return n;
}

bool SimdMachine::any_alive() const {
  for (const Pe& pe : pes_)
    if (pe.pc != kNoState) return true;
  return false;
}

MetaId SimdMachine::resolve_transition(const MetaCode& mc,
                                       const DynBitset& apc) {
  stats_.control_cycles += prog_.transition_cost(mc, cost_);
  if (mc.needs_apc || mc.trans == TransKind::Multiway) ++stats_.global_ors;

  if (apc.empty()) return kNoMeta;  // every process finished: exit

  DynBitset key = prog_.transition_key(apc);
  switch (mc.trans) {
    case TransKind::Direct: {
      const DynBitset& tm = prog_.states[mc.direct_target].members;
      if (key.is_subset_of(tm)) return mc.direct_target;
      break;  // occupancy left the expected set (e.g. everyone reached a
              // barrier out of a PaperPrune direct chain): try the rescue
    }
    case TransKind::Multiway: {
      std::int32_t idx = mc.sw.lookup(key.fold64());
      if (idx >= 0 && mc.case_keys[static_cast<std::size_t>(idx)] == key)
        return mc.case_targets[static_cast<std::size_t>(idx)];
      if (mc.fallback != kNoMeta) return mc.fallback;
      break;  // fall through to the rescue lookup
    }
    case TransKind::Exit:
      break;
  }
  // Rescue: resolve by exact member set (PaperPrune barrier/halt corner
  // cases and fold collisions; see DESIGN.md).
  auto it = prog_.index.find(key);
  if (it != prog_.index.end()) {
    ++stats_.rescue_transitions;
    coverage_hit(cov::kSimdRescue, 1);
    return it->second;
  }
  throw MachineFault(cat("no meta-state transition for aggregate pc ",
                         apc.to_string(), " from meta state ", mc.id));
}

bool SimdMachine::step() {
  if (finished_) return false;
  if (cur_ == kNoMeta) {  // first step
    cur_ = prog_.start;
    if (!any_alive()) {
      finished_ = true;
      return false;
    }
  }
  const MetaCode& mc = prog_.states[cur_];
  ++visits_[cur_];
  // Tracer inputs are computed lazily: an untraced run pays no occupancy
  // or alive-count work here in either engine.
  if (tracer_) tracer_->on_state(cur_, occupancy(), alive_count());
  exec_state(mc);
  ++stats_.meta_transitions;
  if (stats_.meta_transitions > config_.max_blocks) throw mimd::Timeout();
  // One aggregate-pc computation per step, produced by next_state() and
  // reused for the tracer (the seed engine recomputed it three times).
  DynBitset apc;
  MetaId next = next_state(mc, &apc);
  if (tracer_) tracer_->on_transition(cur_, next, apc);
  if (coverage_sink())
    coverage_hit(cov::kSimdTransitionKind, static_cast<std::uint64_t>(mc.trans));
  if (next == kNoMeta) {
    finished_ = true;
    // Fuzzer feature coverage: the finished run's guard-switch / spawn /
    // transition / global-or shape, bucketed (DESIGN.md §8).
    if (coverage_sink())
      coverage_hit(
          cov::kSimdRunShape,
          (std::uint64_t{coverage_bucket(
               static_cast<std::uint64_t>(stats_.guard_switches))}
           << 24) |
              (std::uint64_t{coverage_bucket(
                   static_cast<std::uint64_t>(stats_.spawns))}
               << 16) |
              (std::uint64_t{coverage_bucket(
                   static_cast<std::uint64_t>(stats_.meta_transitions))}
               << 8) |
              coverage_bucket(static_cast<std::uint64_t>(stats_.global_ors)));
    return false;
  }
  cur_ = next;
  return true;
}

void SimdMachine::run() {
  while (step()) {
  }
}

std::unique_ptr<SimdMachine> make_machine(const codegen::SimdProgram& program,
                                          const ir::CostModel& cost,
                                          const mimd::RunConfig& config) {
  if (config.engine == mimd::SimdEngine::Reference)
    return std::make_unique<ReferenceSimdMachine>(program, cost, config);
  return std::make_unique<FastSimdMachine>(program, cost, config);
}

mimd::SimdEngine parse_engine(const std::string& name) {
  if (name == "fast") return mimd::SimdEngine::Fast;
  if (name == "reference") return mimd::SimdEngine::Reference;
  throw std::invalid_argument(
      cat("unknown SIMD engine '", name, "' (expected fast|reference)"));
}

std::string to_json(const SimdMachine& machine) {
  const SimdStats& s = machine.stats();
  char util[32];
  std::snprintf(util, sizeof util, "%.6f", s.utilization());
  std::string json = cat(
      "{\n"
      "  \"engine\": \"", machine.engine_name(), "\",\n"
      "  \"meta_states\": ", machine.state_visits().size(), ",\n"
      "  \"meta_transitions\": ", s.meta_transitions, ",\n"
      "  \"control_cycles\": ", s.control_cycles, ",\n"
      "  \"busy_pe_cycles\": ", s.busy_pe_cycles, ",\n"
      "  \"offered_pe_cycles\": ", s.offered_pe_cycles, ",\n"
      "  \"utilization\": ", util, ",\n"
      "  \"guard_switches\": ", s.guard_switches, ",\n"
      "  \"global_ors\": ", s.global_ors, ",\n"
      "  \"rescue_transitions\": ", s.rescue_transitions, ",\n"
      "  \"spawns\": ", s.spawns, ",\n"
      "  \"visits\": [");
  const std::vector<std::int64_t>& visits = machine.state_visits();
  for (std::size_t i = 0; i < visits.size(); ++i)
    json += cat(i ? ", " : "", visits[i]);
  json += "]\n}\n";
  return json;
}

}  // namespace msc::simd
