// The original scalar SIMD engine, kept as the differential oracle: every
// broadcast scans all nprocs PEs and the aggregate pc is a full rescan.
// Deliberately simple — its value is being obviously correct, so the
// occupancy-indexed engines can be checked against it bit-for-bit forever
// (tests/simd_differential_test.cpp). The one concession is the spawn
// pool free_: the historical per-spawn rescan from PE 0 was O(nprocs) —
// quadratic on spawn-heavy kernels — and "lowest set bit of the idle+fresh
// set" is exactly the PE that scan found, so the optimization does not
// cost any obviousness.
#include "msc/simd/machine.hpp"

#include "msc/support/coverage.hpp"

namespace msc::simd {

using codegen::MetaCode;
using codegen::SOp;
using codegen::SOpKind;
using core::MetaId;
using ir::kNoState;
using ir::MachineFault;

ReferenceSimdMachine::ReferenceSimdMachine(const codegen::SimdProgram& program,
                                           const ir::CostModel& cost,
                                           const mimd::RunConfig& config)
    : SimdMachine(program, cost, config),
      free_(static_cast<std::size_t>(config_.nprocs)) {
  // The oracle's value is being obviously correct: it never takes the
  // whole-lane path, whatever RunConfig::simd_isa asked for.
  isa_ = SimdIsa::Scalar;
  for (std::int64_t i = 0; i < config_.nprocs; ++i)
    if (pes_[static_cast<std::size_t>(i)].pc == kNoState)
      free_.set(static_cast<std::size_t>(i));  // never ran: spawnable
}

void ReferenceSimdMachine::exec_state(const MetaCode& mc) {
  std::int64_t alive_count = 0;
  for (Pe& pe : pes_) {
    pe.next_pc = pe.pc;
    if (alive(pe)) ++alive_count;
  }

  const DynBitset* prev_guard = nullptr;
  for (const SOp& op : mc.code) {
    // Re-programming the PE enable mask costs a broadcast of its own
    // whenever consecutive ops carry different guards (the `if (pc & …)`
    // boundaries of Listing 5).
    // (Charged to the control unit only: utilization remains the §2.4
    // divergence metric over instruction broadcasts.)
    if (!prev_guard || !(*prev_guard == op.guard)) {
      stats_.control_cycles += cost_.guard_switch;
      ++stats_.guard_switches;
    }
    prev_guard = &op.guard;
    // Single instruction broadcast: enabled PEs act, the rest idle.
    std::int64_t op_cost = 0;
    switch (op.kind) {
      case SOpKind::Data: op_cost = cost_.instr_cost(op.instr); break;
      case SOpKind::SetPc: op_cost = cost_.jump; break;
      case SOpKind::CondSetPc: op_cost = cost_.branch; break;
      case SOpKind::HaltPc: op_cost = cost_.halt; break;
      case SOpKind::SpawnPc: op_cost = cost_.spawn; break;
    }
    stats_.control_cycles += op_cost;
    stats_.offered_pe_cycles += op_cost * alive_count;

    for (std::int64_t i = 0; i < config_.nprocs; ++i) {
      Pe& pe = pes_[static_cast<std::size_t>(i)];
      if (!alive(pe) || !op.guard.test(pe.pc)) continue;
      stats_.busy_pe_cycles += op_cost;
      switch (op.kind) {
        case SOpKind::Data: {
          ir::PeContext ctx{lanes_.pe_view(i), &lanes_.stack(i), i,
                            config_.nprocs};
          ir::exec_instr(op.instr, ctx, *this);
          break;
        }
        case SOpKind::SetPc:
          pe.next_pc = op.a;
          break;
        case SOpKind::CondSetPc: {
          Value cond = ir::stack_pop(lanes_.stack(i));
          pe.next_pc = cond.truthy() ? op.a : op.b;
          break;
        }
        case SOpKind::HaltPc:
          pe.next_pc = kNoState;
          break;
        case SOpKind::SpawnPc: {
          // Allocate the lowest-numbered free PE (free: not running and
          // not already claimed in this meta state).
          std::size_t child = free_.first();
          if (child == DynBitset::npos)
            throw MachineFault("spawn failed: no free processing element "
                               "(§3.2.5 assumes processes ≤ processors)");
          free_.reset(child);
          Pe& ch = pes_[child];
          if (ch.ever_ran) coverage_hit(cov::kSimdSpawnReuse, 1);
          lanes_.clear_pe(static_cast<std::int64_t>(child));
          ch.next_pc = op.a;
          ch.ever_ran = true;
          ++stats_.spawns;
          pe.next_pc = op.b;
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    Pe& pe = pes_[i];
    // A PE halting this state re-enters the spawn pool only under reuse
    // (§3.2.5); fresh never-ran PEs are already in it.
    if (config_.reuse_halted_pes && pe.pc != kNoState && pe.next_pc == kNoState)
      free_.set(i);
    pe.pc = pe.next_pc;
  }
}

MetaId ReferenceSimdMachine::next_state(const MetaCode& mc, DynBitset* apc) {
  *apc = aggregate_pc();
  return resolve_transition(mc, *apc);
}

}  // namespace msc::simd
