#include "msc/simd/coschedule.hpp"

#include <cstdio>
#include <stdexcept>

#include "msc/support/rng.hpp"
#include "msc/support/str.hpp"

namespace msc::simd {

namespace {

/// d = post - pre, field by field. SimdStats counters are all monotone
/// within one machine, so every delta is non-negative.
SimdStats stats_delta(const SimdStats& post, const SimdStats& pre) {
  SimdStats d;
  d.control_cycles = post.control_cycles - pre.control_cycles;
  d.busy_pe_cycles = post.busy_pe_cycles - pre.busy_pe_cycles;
  d.offered_pe_cycles = post.offered_pe_cycles - pre.offered_pe_cycles;
  d.meta_transitions = post.meta_transitions - pre.meta_transitions;
  d.global_ors = post.global_ors - pre.global_ors;
  d.guard_switches = post.guard_switches - pre.guard_switches;
  d.spawns = post.spawns - pre.spawns;
  d.rescue_transitions = post.rescue_transitions - pre.rescue_transitions;
  d.router_ops = post.router_ops - pre.router_ops;
  return d;
}

void stats_accumulate(SimdStats& acc, const SimdStats& d) {
  acc.control_cycles += d.control_cycles;
  acc.busy_pe_cycles += d.busy_pe_cycles;
  acc.offered_pe_cycles += d.offered_pe_cycles;
  acc.meta_transitions += d.meta_transitions;
  acc.global_ors += d.global_ors;
  acc.guard_switches += d.guard_switches;
  acc.spawns += d.spawns;
  acc.rescue_transitions += d.rescue_transitions;
  acc.router_ops += d.router_ops;
}

std::string stats_json(const SimdStats& s, const char* indent) {
  return cat(
      "{\n", indent, "  \"control_cycles\": ", s.control_cycles,
      ",\n", indent, "  \"busy_pe_cycles\": ", s.busy_pe_cycles,
      ",\n", indent, "  \"offered_pe_cycles\": ", s.offered_pe_cycles,
      ",\n", indent, "  \"meta_transitions\": ", s.meta_transitions,
      ",\n", indent, "  \"global_ors\": ", s.global_ors,
      ",\n", indent, "  \"guard_switches\": ", s.guard_switches,
      ",\n", indent, "  \"spawns\": ", s.spawns,
      ",\n", indent, "  \"rescue_transitions\": ", s.rescue_transitions,
      ",\n", indent, "  \"router_ops\": ", s.router_ops,
      "\n", indent, "}");
}

}  // namespace

CoPolicy parse_copolicy(const std::string& name) {
  if (name == "sequential") return CoPolicy::Sequential;
  if (name == "rr" || name == "round-robin") return CoPolicy::RoundRobin;
  if (name == "greedy" || name == "greedy-occupancy")
    return CoPolicy::GreedyOccupancy;
  throw std::invalid_argument(
      cat("unknown co-schedule policy '", name,
          "' (want sequential, rr, or greedy)"));
}

const char* copolicy_name(CoPolicy policy) {
  switch (policy) {
    case CoPolicy::Sequential: return "sequential";
    case CoPolicy::RoundRobin: return "rr";
    case CoPolicy::GreedyOccupancy: return "greedy";
  }
  return "?";
}

void CoScheduler::add_program(std::string name,
                              std::unique_ptr<SimdMachine> machine) {
  if (!machine) throw std::invalid_argument("co-schedule: null machine");
  programs_.push_back(Entry{std::move(name), std::move(machine)});
}

CoResult CoScheduler::run(const CoOptions& options) {
  if (programs_.empty())
    throw std::logic_error("co-schedule: no programs registered");
  if (ran_) throw std::logic_error("co-schedule: scheduler already ran");
  if (options.quantum < 1)
    throw std::invalid_argument("co-schedule: quantum must be >= 1");

  const std::size_t n = programs_.size();

  // Deterministic program order: the caller's explicit permutation, else
  // Fisher-Yates under the caller's seed. Validated before the scheduler
  // is consumed so a rejected option set leaves it runnable.
  std::vector<std::size_t> order;
  if (!options.order.empty()) {
    if (options.order.size() != n)
      throw std::invalid_argument("co-schedule: order is not a permutation");
    std::vector<bool> seen(n, false);
    for (const std::size_t i : options.order) {
      if (i >= n || seen[i])
        throw std::invalid_argument("co-schedule: order is not a permutation");
      seen[i] = true;
    }
    order = options.order;
  } else {
    order.resize(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    Rng rng(options.seed);
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(order[i - 1], order[j]);
    }
  }
  ran_ = true;

  CoResult result;
  result.policy = options.policy;
  result.seed = options.seed;
  result.quantum = options.quantum;
  result.programs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.programs[i].name = programs_[i].name;
    result.programs[i].pes = programs_[i].machine->nprocs();
    result.machine_pes += result.programs[i].pes;
  }

  std::vector<bool> finished(n, false);
  std::size_t remaining = n;
  std::size_t rr_cursor = 0;  // index into `order`

  // Pick the next program (index into programs_) per policy; only called
  // while at least one program is unfinished.
  const auto choose = [&]() -> std::size_t {
    switch (options.policy) {
      case CoPolicy::Sequential:
        for (const std::size_t i : order)
          if (!finished[i]) return i;
        break;
      case CoPolicy::RoundRobin:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = order[(rr_cursor + k) % n];
          if (!finished[i]) {
            rr_cursor = (rr_cursor + k + 1) % n;
            return i;
          }
        }
        break;
      case CoPolicy::GreedyOccupancy: {
        std::size_t best = n;
        std::int64_t best_alive = -1;
        for (const std::size_t i : order)
          if (!finished[i] && programs_[i].machine->alive_count() > best_alive) {
            best = i;
            best_alive = programs_[i].machine->alive_count();
          }
        if (best < n) return best;
        break;
      }
    }
    throw std::logic_error("co-schedule: no runnable program");
  };

  while (remaining > 0) {
    const std::size_t i = choose();
    SimdMachine& m = *programs_[i].machine;
    CoProgramResult& pr = result.programs[i];
    for (std::int64_t q = 0; q < options.quantum; ++q) {
      const SimdStats pre = m.stats();
      const std::int64_t pre_alive = m.alive_count();
      const bool more = m.step();
      const SimdStats d = stats_delta(m.stats(), pre);
      // One shared control unit: the machine clock advances by exactly
      // this step's control cost, every resident PE either works (the
      // runner) or waits (everyone else).
      result.elapsed_control_cycles += d.control_cycles;
      stats_accumulate(result.machine, d);
      pr.held_pe_cycles += d.control_cycles * pre_alive;
      for (std::size_t j = 0; j < n; ++j)
        if (j != i && !finished[j])
          result.programs[j].idle_pe_cycles +=
              d.control_cycles * programs_[j].machine->alive_count();
      // The exiting step still executes its final meta state before
      // step() returns false, so count executed steps by the transition
      // delta, not the return value.
      pr.steps += d.meta_transitions;
      if (!more) {
        finished[i] = true;
        --remaining;
        pr.completion_cycle = result.elapsed_control_cycles;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    SimdMachine& m = *programs_[i].machine;
    m.publish_metrics();
    CoProgramResult& pr = result.programs[i];
    pr.stats = m.stats();
    pr.visits = m.state_visits();
    pr.profile = m.profile();
    pr.run_json = to_json(m);
    result.held_pe_cycles += pr.held_pe_cycles;
    result.idle_pe_cycles += pr.idle_pe_cycles;
  }
  return result;
}

std::string to_json(const CoResult& r) {
  char util[32];
  std::snprintf(util, sizeof util, "%.6f", r.machine_utilization());
  std::string json = cat(
      "{\n"
      "  \"coschedule\": true,\n"
      "  \"policy\": \"", copolicy_name(r.policy), "\",\n"
      "  \"seed\": ", r.seed, ",\n"
      "  \"quantum\": ", r.quantum, ",\n"
      "  \"machine_pes\": ", r.machine_pes, ",\n"
      "  \"elapsed_control_cycles\": ", r.elapsed_control_cycles, ",\n"
      "  \"held_pe_cycles\": ", r.held_pe_cycles, ",\n"
      "  \"idle_pe_cycles\": ", r.idle_pe_cycles, ",\n"
      "  \"machine_utilization\": ", util, ",\n"
      "  \"machine\": ", stats_json(r.machine, "  "), ",\n"
      "  \"programs\": [\n");
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    const CoProgramResult& p = r.programs[i];
    // Embed the standalone run document verbatim (indentation aside): a
    // co-scheduled program section is exactly what mscprof already knows
    // how to read.
    std::string run = p.run_json;
    while (!run.empty() && (run.back() == '\n' || run.back() == ' '))
      run.pop_back();
    json += cat("    {\"name\": \"", json_escape(p.name),
                "\", \"pes\": ", p.pes,
                ", \"steps\": ", p.steps,
                ", \"completion_cycle\": ", p.completion_cycle,
                ",\n     \"held_pe_cycles\": ", p.held_pe_cycles,
                ", \"idle_pe_cycles\": ", p.idle_pe_cycles,
                ",\n     \"run\": ", run, "}",
                i + 1 < r.programs.size() ? "," : "", "\n");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace msc::simd
