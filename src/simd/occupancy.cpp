// Shared substrate of the occupancy-indexed engines (Fast, Codegen):
// construction of the per-MIMD-state PE index, the incrementally
// maintained aggregate pc / alive count / spawn pool, the end-of-state pc
// commit, and the §3.2.5 spawn allocation. Invariants in DESIGN.md §7 and
// on the class declaration.
#include "msc/simd/machine.hpp"

#include <algorithm>
#include <memory>

#include "msc/support/coverage.hpp"

namespace msc::simd {

using ir::kNoState;
using ir::MachineFault;

OccupancySimdMachine::OccupancySimdMachine(const codegen::SimdProgram& program,
                                           const ir::CostModel& cost,
                                           const mimd::RunConfig& config)
    : SimdMachine(program, cost, config),
      occ_(prog_.mimd_states, DynBitset(static_cast<std::size_t>(config_.nprocs))),
      occ_count_(prog_.mimd_states, 0),
      apc_(prog_.mimd_states),
      free_(static_cast<std::size_t>(config_.nprocs)) {
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    pe.next_pc = pe.pc;
    if (pe.pc != kNoState) {
      occ_[static_cast<std::size_t>(pe.pc)].set(static_cast<std::size_t>(i));
      if (occ_count_[static_cast<std::size_t>(pe.pc)]++ == 0)
        apc_.set(static_cast<std::size_t>(pe.pc));
      ++alive_;
    } else {
      free_.set(static_cast<std::size_t>(i));  // never ran: spawnable
    }
  }
}

void OccupancySimdMachine::spawn_pe(Pe& parent, std::int64_t parent_id,
                                    ir::StateId child_entry,
                                    ir::StateId cont) {
  std::size_t child = free_.first();
  if (child == DynBitset::npos)
    throw MachineFault("spawn failed: no free processing element "
                       "(§3.2.5 assumes processes ≤ processors)");
  free_.reset(child);
  Pe& ch = pes_[child];
  if (ch.ever_ran) coverage_hit(cov::kSimdSpawnReuse, 1);
  lanes_.clear_pe(static_cast<std::int64_t>(child));
  ch.next_pc = child_entry;
  ch.ever_ran = true;
  moved_.push_back(static_cast<std::int64_t>(child));
  ++stats_.spawns;
  parent.next_pc = cont;
  moved_.push_back(parent_id);
}

void OccupancySimdMachine::lane_set_next_pc(std::int64_t pe,
                                            ir::StateId target) {
  pes_[static_cast<std::size_t>(pe)].next_pc = target;
  moved_.push_back(pe);
}

std::int64_t OccupancySimdMachine::build_lane_mask(
    const std::vector<ir::StateId>& guard_states) {
  if (lane_mask_.size() != lanes_.mask_words())
    lane_mask_.assign(lanes_.mask_words(), 0);
  else
    std::fill(lane_mask_.begin(), lane_mask_.end(), 0);
  std::int64_t enabled = 0;
  for (ir::StateId s : guard_states) {
    const std::size_t si = static_cast<std::size_t>(s);
    if (occ_count_[si] == 0) continue;
    enabled += occ_count_[si];
    const DynBitset& pes = occ_[si];
    // DynBitset words hold ceil(nprocs/64) == mask_words() words; pads
    // beyond nprocs are never set, so pad PEs are never enabled.
    for (std::size_t w = 0; w < pes.word_size(); ++w)
      lane_mask_[w] |= pes.word(w);
  }
  return enabled;
}

LaneExecutor& OccupancySimdMachine::lane_executor() {
  if (!lane_exec_)
    lane_exec_ = std::make_unique<LaneExecutor>(lanes_, *this, config_.nprocs,
                                                isa_);
  return *lane_exec_;
}

void OccupancySimdMachine::commit() {
  for (std::int64_t i : moved_) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    if (pe.next_pc == pe.pc) continue;  // e.g. a self-loop branch target
    if (pe.pc != kNoState) {
      std::size_t old_pc = static_cast<std::size_t>(pe.pc);
      occ_[old_pc].reset(static_cast<std::size_t>(i));
      if (--occ_count_[old_pc] == 0) apc_.reset(old_pc);
    } else {
      ++alive_;  // spawned child comes to life
    }
    if (pe.next_pc != kNoState) {
      std::size_t new_pc = static_cast<std::size_t>(pe.next_pc);
      occ_[new_pc].set(static_cast<std::size_t>(i));
      if (occ_count_[new_pc]++ == 0) apc_.set(new_pc);
    } else {
      --alive_;  // halted; §3.2.5: returns to the pool only under reuse
      if (config_.reuse_halted_pes) free_.set(static_cast<std::size_t>(i));
    }
    pe.pc = pe.next_pc;
  }
  moved_.clear();
}

}  // namespace msc::simd
