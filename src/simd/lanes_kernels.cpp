// Elementwise lane kernels behind msc/support/simd_isa.hpp.
//
// Dispatch strategy: classify each operand lane's kind tags over the
// MASKED elements only. If both sides are uniformly Int (or uniformly
// Float), the whole padded lane runs through one branch-free full-width
// loop — every element, enabled or not, is fully defined, so this is
// sanitizer-clean and lets the vector ISAs work on whole registers.
// Anything else (mixed tags, or ops whose scalar semantics convert a
// float to an int) falls back to a masked per-element loop over
// ir::eval_binary, which touches enabled elements only. Either way the
// enabled results are bit-identical to the scalar interpreter.
//
// Full-width safety rules (see DESIGN.md §14):
//  - disabled elements may hold garbage VALUES but are always initialized,
//    so wrap-around int math and float math on them is defined;
//  - float→int conversions never run full-width (a huge double on a
//    disabled element would be UB), so CastI/BitNot/shift-style ops on
//    float lanes are always masked-elementwise;
//  - int→float conversion is defined for every int64, so Int-lane inputs
//    may be promoted full-width;
//  - outputs write all three arrays (tag, int, float) with the unused
//    payload zeroed, matching Value::of_int / of_float bit patterns.
#include <cstring>

#include "msc/simd/lanes.hpp"

#if defined(__x86_64__) && !defined(MSC_SIMD_ISA_SCALAR)
#include <immintrin.h>
#endif
#if defined(__aarch64__) && !defined(MSC_SIMD_ISA_SCALAR)
#include <arm_neon.h>
#endif

namespace msc::simd {
namespace {

using ir::Opcode;

enum class TagClass : std::uint8_t { Int, Float, Mixed };

constexpr int kUnhandled = 0;
constexpr int kWroteInt = 1;
constexpr int kWroteFloat = 2;

/// Kind uniformity over the masked elements only. Full mask words check
/// eight tag bytes at a time; partial words test per bit.
TagClass masked_tag_class(const std::uint8_t* tag, const std::uint64_t* mask,
                          std::size_t n) {
  constexpr std::uint64_t kAllFloat = 0x0101010101010101ull;
  bool any_int = false, any_float = false;
  const std::size_t nwords = n / 64;
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t m = mask[w];
    if (m == 0) continue;
    const std::uint8_t* t = tag + w * 64;
    if (m == ~std::uint64_t{0}) {
      std::uint64_t orv = 0, andv = ~std::uint64_t{0};
      for (int c = 0; c < 8; ++c) {
        std::uint64_t chunk;
        std::memcpy(&chunk, t + c * 8, 8);
        orv |= chunk;
        andv &= chunk;
      }
      if (orv == 0) {
        any_int = true;
      } else if (andv == kAllFloat) {
        any_float = true;
      } else {
        return TagClass::Mixed;
      }
    } else {
      std::uint64_t mm = m;
      while (mm != 0) {
        const int b = __builtin_ctzll(mm);
        if (t[b] != 0) {
          any_float = true;
        } else {
          any_int = true;
        }
        mm &= mm - 1;
      }
    }
    if (any_int && any_float) return TagClass::Mixed;
  }
  return any_float ? TagClass::Float : TagClass::Int;
}

void finish_int(std::uint8_t* otag, double* of, std::size_t n) {
  std::memset(otag, 0, n);
  std::memset(of, 0, n * sizeof(double));
}
void finish_float(std::uint8_t* otag, std::int64_t* oi, std::size_t n) {
  std::memset(otag, 1, n);
  std::memset(oi, 0, n * sizeof(std::int64_t));
}

Value lane_value(const std::uint8_t* tag, const std::int64_t* iv,
                 const double* fv, std::size_t k) {
  Value v;
  v.kind = static_cast<Value::Kind>(tag[k]);
  v.i = iv[k];
  v.f = fv[k];
  return v;
}

void put_value(std::uint8_t* otag, std::int64_t* oi, double* of, std::size_t k,
               const Value& v) {
  otag[k] = static_cast<std::uint8_t>(v.kind);
  oi[k] = v.i;
  of[k] = v.f;
}

// ------------------------------------------------ portable full-width loops

/// Int×int binary over the whole lane; getters give per-element operands.
/// Handles every binary opcode (so both-Int lanes never hit the masked
/// fallback); mirrors ir::arith's wrap-mod-2^64 semantics exactly.
template <typename GX, typename GY>
int int_bin_go(Opcode op, GX gx, GY gy, std::int64_t* oi, std::size_t n) {
  switch (op) {
    case Opcode::Add:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = static_cast<std::int64_t>(static_cast<std::uint64_t>(gx(k)) +
                                          static_cast<std::uint64_t>(gy(k)));
      return kWroteInt;
    case Opcode::Sub:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = static_cast<std::int64_t>(static_cast<std::uint64_t>(gx(k)) -
                                          static_cast<std::uint64_t>(gy(k)));
      return kWroteInt;
    case Opcode::Mul:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = static_cast<std::int64_t>(static_cast<std::uint64_t>(gx(k)) *
                                          static_cast<std::uint64_t>(gy(k)));
      return kWroteInt;
    case Opcode::Div:
      for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t x = gx(k), y = gy(k);
        if (y == 0)
          oi[k] = 0;
        else if (y == -1)
          oi[k] = static_cast<std::int64_t>(-static_cast<std::uint64_t>(x));
        else
          oi[k] = x / y;
      }
      return kWroteInt;
    case Opcode::Mod:
      for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t x = gx(k), y = gy(k);
        oi[k] = (y == 0 || y == -1) ? 0 : x % y;
      }
      return kWroteInt;
    case Opcode::Lt:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) < gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Le:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) <= gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Gt:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) > gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Ge:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) >= gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Eq:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) == gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Ne:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) != gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::LAnd:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = (gx(k) != 0 && gy(k) != 0) ? 1 : 0;
      return kWroteInt;
    case Opcode::LOr:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = (gx(k) != 0 || gy(k) != 0) ? 1 : 0;
      return kWroteInt;
    case Opcode::BitAnd:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) & gy(k);
      return kWroteInt;
    case Opcode::BitOr:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) | gy(k);
      return kWroteInt;
    case Opcode::BitXor:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) ^ gy(k);
      return kWroteInt;
    case Opcode::Shl:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gx(k))
            << (static_cast<std::uint64_t>(gy(k)) & 63));
      return kWroteInt;
    case Opcode::Shr:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gx(k)) >>
            (static_cast<std::uint64_t>(gy(k)) & 63));
      return kWroteInt;
    default:
      return kUnhandled;
  }
}

/// Float binary over the whole lane (either side may be a promoted Int
/// lane — int64→double is defined for every value, so promotion may run
/// full-width). Handles exactly the ops ir::arith defines on floats plus
/// LAnd/LOr truthiness; everything else (Mod, bit ops, shifts — which
/// convert float→int per element) reports kUnhandled.
template <typename GX, typename GY>
int float_bin_go(Opcode op, GX gx, GY gy, std::int64_t* oi, double* of,
                 std::size_t n) {
  switch (op) {
    case Opcode::Add:
      for (std::size_t k = 0; k < n; ++k) of[k] = gx(k) + gy(k);
      return kWroteFloat;
    case Opcode::Sub:
      for (std::size_t k = 0; k < n; ++k) of[k] = gx(k) - gy(k);
      return kWroteFloat;
    case Opcode::Mul:
      for (std::size_t k = 0; k < n; ++k) of[k] = gx(k) * gy(k);
      return kWroteFloat;
    case Opcode::Div:
      for (std::size_t k = 0; k < n; ++k) {
        const double y = gy(k);
        of[k] = y == 0.0 ? 0.0 : gx(k) / y;
      }
      return kWroteFloat;
    case Opcode::Lt:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) < gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Le:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) <= gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Gt:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) > gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Ge:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) >= gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Eq:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) == gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::Ne:
      for (std::size_t k = 0; k < n; ++k) oi[k] = gx(k) != gy(k) ? 1 : 0;
      return kWroteInt;
    case Opcode::LAnd:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = (gx(k) != 0.0 && gy(k) != 0.0) ? 1 : 0;
      return kWroteInt;
    case Opcode::LOr:
      for (std::size_t k = 0; k < n; ++k)
        oi[k] = (gx(k) != 0.0 || gy(k) != 0.0) ? 1 : 0;
      return kWroteInt;
    default:
      return kUnhandled;
  }
}

// ------------------------------------------------- ISA applier signatures

/// Full-width int×int applier. bptr == nullptr means "broadcast bimm".
using IntBinFn = int (*)(Opcode op, const std::int64_t* a,
                         const std::int64_t* bptr, std::int64_t bimm,
                         std::int64_t* oi, std::size_t n);
/// Full-width float×float applier, same broadcast convention.
using FloatBinFn = int (*)(Opcode op, const double* a, const double* bptr,
                           double bimm, std::int64_t* oi, double* of,
                           std::size_t n);

int int_bin_portable(Opcode op, const std::int64_t* a,
                     const std::int64_t* bptr, std::int64_t bimm,
                     std::int64_t* oi, std::size_t n) {
  if (bptr != nullptr)
    return int_bin_go(
        op, [a](std::size_t k) { return a[k]; },
        [bptr](std::size_t k) { return bptr[k]; }, oi, n);
  return int_bin_go(
      op, [a](std::size_t k) { return a[k]; },
      [bimm](std::size_t) { return bimm; }, oi, n);
}

int float_bin_portable(Opcode op, const double* a, const double* bptr,
                       double bimm, std::int64_t* oi, double* of,
                       std::size_t n) {
  if (bptr != nullptr)
    return float_bin_go(
        op, [a](std::size_t k) { return a[k]; },
        [bptr](std::size_t k) { return bptr[k]; }, oi, of, n);
  return float_bin_go(
      op, [a](std::size_t k) { return a[k]; },
      [bimm](std::size_t) { return bimm; }, oi, of, n);
}

// ---------------------------------------------------------- AVX2 appliers

#if defined(__x86_64__) && !defined(MSC_SIMD_ISA_SCALAR)

__attribute__((target("avx2"))) int int_bin_avx2(Opcode op,
                                                 const std::int64_t* a,
                                                 const std::int64_t* bptr,
                                                 std::int64_t bimm,
                                                 std::int64_t* oi,
                                                 std::size_t n) {
  // Mul/Div/Mod have no 64-bit AVX2 forms; the caller falls back to the
  // portable full-width loop for those.
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::BitAnd:
    case Opcode::BitOr:
    case Opcode::BitXor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::LAnd:
    case Opcode::LOr:
      break;
    default:
      return kUnhandled;
  }
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i sixtythree = _mm256_set1_epi64x(63);
  const __m256i vimm = _mm256_set1_epi64x(bimm);
  for (std::size_t k = 0; k < n; k += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i vb =
        bptr != nullptr
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bptr + k))
            : vimm;
    __m256i vo;
    switch (op) {
      case Opcode::Add: vo = _mm256_add_epi64(va, vb); break;
      case Opcode::Sub: vo = _mm256_sub_epi64(va, vb); break;
      case Opcode::BitAnd: vo = _mm256_and_si256(va, vb); break;
      case Opcode::BitOr: vo = _mm256_or_si256(va, vb); break;
      case Opcode::BitXor: vo = _mm256_xor_si256(va, vb); break;
      case Opcode::Shl:
        vo = _mm256_sllv_epi64(va, _mm256_and_si256(vb, sixtythree));
        break;
      case Opcode::Shr:
        vo = _mm256_srlv_epi64(va, _mm256_and_si256(vb, sixtythree));
        break;
      case Opcode::Lt:
        vo = _mm256_srli_epi64(_mm256_cmpgt_epi64(vb, va), 63);
        break;
      case Opcode::Gt:
        vo = _mm256_srli_epi64(_mm256_cmpgt_epi64(va, vb), 63);
        break;
      case Opcode::Le:
        vo = _mm256_srli_epi64(
            _mm256_xor_si256(_mm256_cmpgt_epi64(va, vb), ones), 63);
        break;
      case Opcode::Ge:
        vo = _mm256_srli_epi64(
            _mm256_xor_si256(_mm256_cmpgt_epi64(vb, va), ones), 63);
        break;
      case Opcode::Eq:
        vo = _mm256_srli_epi64(_mm256_cmpeq_epi64(va, vb), 63);
        break;
      case Opcode::Ne:
        vo = _mm256_srli_epi64(
            _mm256_xor_si256(_mm256_cmpeq_epi64(va, vb), ones), 63);
        break;
      case Opcode::LAnd: {
        const __m256i ta = _mm256_xor_si256(_mm256_cmpeq_epi64(va, zero), ones);
        const __m256i tb = _mm256_xor_si256(_mm256_cmpeq_epi64(vb, zero), ones);
        vo = _mm256_srli_epi64(_mm256_and_si256(ta, tb), 63);
        break;
      }
      case Opcode::LOr: {
        const __m256i ta = _mm256_xor_si256(_mm256_cmpeq_epi64(va, zero), ones);
        const __m256i tb = _mm256_xor_si256(_mm256_cmpeq_epi64(vb, zero), ones);
        vo = _mm256_srli_epi64(_mm256_or_si256(ta, tb), 63);
        break;
      }
      default: vo = zero; break;  // unreachable: filtered above
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(oi + k), vo);
  }
  return kWroteInt;
}

__attribute__((target("avx2"))) int float_bin_avx2(Opcode op, const double* a,
                                                   const double* bptr,
                                                   double bimm,
                                                   std::int64_t* oi,
                                                   double* of, std::size_t n) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::LAnd:
    case Opcode::LOr:
      break;
    default:
      return kUnhandled;
  }
  const __m256d zerod = _mm256_setzero_pd();
  const __m256d vimm = _mm256_set1_pd(bimm);
  const bool cmp_out = !(op == Opcode::Add || op == Opcode::Sub ||
                         op == Opcode::Mul || op == Opcode::Div);
  for (std::size_t k = 0; k < n; k += 4) {
    const __m256d va = _mm256_loadu_pd(a + k);
    const __m256d vb = bptr != nullptr ? _mm256_loadu_pd(bptr + k) : vimm;
    if (!cmp_out) {
      __m256d vo;
      switch (op) {
        case Opcode::Add: vo = _mm256_add_pd(va, vb); break;
        case Opcode::Sub: vo = _mm256_sub_pd(va, vb); break;
        case Opcode::Mul: vo = _mm256_mul_pd(va, vb); break;
        default: {  // Div: guest define x/0 == 0
          const __m256d q = _mm256_div_pd(va, vb);
          const __m256d yzero = _mm256_cmp_pd(vb, zerod, _CMP_EQ_OQ);
          vo = _mm256_andnot_pd(yzero, q);
          break;
        }
      }
      _mm256_storeu_pd(of + k, vo);
      continue;
    }
    __m256d m;
    switch (op) {
      case Opcode::Lt: m = _mm256_cmp_pd(va, vb, _CMP_LT_OQ); break;
      case Opcode::Le: m = _mm256_cmp_pd(va, vb, _CMP_LE_OQ); break;
      case Opcode::Gt: m = _mm256_cmp_pd(va, vb, _CMP_GT_OQ); break;
      case Opcode::Ge: m = _mm256_cmp_pd(va, vb, _CMP_GE_OQ); break;
      case Opcode::Eq: m = _mm256_cmp_pd(va, vb, _CMP_EQ_OQ); break;
      case Opcode::Ne: m = _mm256_cmp_pd(va, vb, _CMP_NEQ_UQ); break;
      case Opcode::LAnd: {
        const __m256d ta = _mm256_cmp_pd(va, zerod, _CMP_NEQ_UQ);
        const __m256d tb = _mm256_cmp_pd(vb, zerod, _CMP_NEQ_UQ);
        m = _mm256_and_pd(ta, tb);
        break;
      }
      default: {  // LOr
        const __m256d ta = _mm256_cmp_pd(va, zerod, _CMP_NEQ_UQ);
        const __m256d tb = _mm256_cmp_pd(vb, zerod, _CMP_NEQ_UQ);
        m = _mm256_or_pd(ta, tb);
        break;
      }
    }
    const __m256i bits = _mm256_castpd_si256(m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(oi + k),
                        _mm256_srli_epi64(bits, 63));
  }
  return cmp_out ? kWroteInt : kWroteFloat;
}

#endif  // __x86_64__ && !MSC_SIMD_ISA_SCALAR

// ---------------------------------------------------------- NEON appliers

#if defined(__aarch64__) && !defined(MSC_SIMD_ISA_SCALAR)

int int_bin_neon(Opcode op, const std::int64_t* a, const std::int64_t* bptr,
                 std::int64_t bimm, std::int64_t* oi, std::size_t n) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::BitAnd:
    case Opcode::BitOr:
    case Opcode::BitXor:
    case Opcode::Eq:
    case Opcode::Gt:
    case Opcode::Lt:
      break;
    default:
      return kUnhandled;
  }
  const int64x2_t vimm = vdupq_n_s64(bimm);
  for (std::size_t k = 0; k < n; k += 2) {
    const int64x2_t va = vld1q_s64(a + k);
    const int64x2_t vb = bptr != nullptr ? vld1q_s64(bptr + k) : vimm;
    int64x2_t vo;
    switch (op) {
      case Opcode::Add: vo = vaddq_s64(va, vb); break;
      case Opcode::Sub: vo = vsubq_s64(va, vb); break;
      case Opcode::BitAnd:
        vo = vreinterpretq_s64_u64(
            vandq_u64(vreinterpretq_u64_s64(va), vreinterpretq_u64_s64(vb)));
        break;
      case Opcode::BitOr:
        vo = vreinterpretq_s64_u64(
            vorrq_u64(vreinterpretq_u64_s64(va), vreinterpretq_u64_s64(vb)));
        break;
      case Opcode::BitXor:
        vo = vreinterpretq_s64_u64(
            veorq_u64(vreinterpretq_u64_s64(va), vreinterpretq_u64_s64(vb)));
        break;
      case Opcode::Eq:
        vo = vreinterpretq_s64_u64(vshrq_n_u64(vceqq_s64(va, vb), 63));
        break;
      case Opcode::Gt:
        vo = vreinterpretq_s64_u64(vshrq_n_u64(vcgtq_s64(va, vb), 63));
        break;
      default:  // Lt
        vo = vreinterpretq_s64_u64(vshrq_n_u64(vcgtq_s64(vb, va), 63));
        break;
    }
    vst1q_s64(oi + k, vo);
  }
  return kWroteInt;
}

int float_bin_neon(Opcode op, const double* a, const double* bptr, double bimm,
                   std::int64_t* oi, double* of, std::size_t n) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      break;
    default:
      return kUnhandled;
  }
  (void)oi;
  const float64x2_t vimm = vdupq_n_f64(bimm);
  for (std::size_t k = 0; k < n; k += 2) {
    const float64x2_t va = vld1q_f64(a + k);
    const float64x2_t vb = bptr != nullptr ? vld1q_f64(bptr + k) : vimm;
    float64x2_t vo;
    switch (op) {
      case Opcode::Add: vo = vaddq_f64(va, vb); break;
      case Opcode::Sub: vo = vsubq_f64(va, vb); break;
      default: vo = vmulq_f64(va, vb); break;  // Mul
    }
    vst1q_f64(of + k, vo);
  }
  return kWroteFloat;
}

#endif  // __aarch64__ && !MSC_SIMD_ISA_SCALAR

// -------------------------------------------------------- shared dispatch

void bin_masked_elem(Opcode op, const std::uint8_t* atag,
                     const std::int64_t* ai, const double* af,
                     const std::uint8_t* btag, const std::int64_t* bi,
                     const double* bf, std::uint8_t* otag, std::int64_t* oi,
                     double* of, const std::uint64_t* mask, std::size_t n) {
  for_each_lane_bit(mask, n / 64, [&](std::size_t k) {
    const Value a = lane_value(atag, ai, af, k);
    const Value b = lane_value(btag, bi, bf, k);
    put_value(otag, oi, of, k, ir::eval_binary(op, a, b));
  });
}

void bin_imm_masked_elem(Opcode op, const std::uint8_t* atag,
                         const std::int64_t* ai, const double* af,
                         const Value& b, std::uint8_t* otag, std::int64_t* oi,
                         double* of, const std::uint64_t* mask, std::size_t n) {
  for_each_lane_bit(mask, n / 64, [&](std::size_t k) {
    const Value a = lane_value(atag, ai, af, k);
    put_value(otag, oi, of, k, ir::eval_binary(op, a, b));
  });
}

void finish(int r, std::uint8_t* otag, std::int64_t* oi, double* of,
            std::size_t n) {
  if (r == kWroteInt)
    finish_int(otag, of, n);
  else
    finish_float(otag, oi, n);
}

/// Lane×lane dispatch shared by every ISA table; `ibin`/`fbin` are the
/// ISA's full-width appliers (tried first, portable loops as fallback).
void bin_dispatch(Opcode op, const std::uint8_t* atag, const std::int64_t* ai,
                  const double* af, const std::uint8_t* btag,
                  const std::int64_t* bi, const double* bf, std::uint8_t* otag,
                  std::int64_t* oi, double* of, const std::uint64_t* mask,
                  std::size_t n, IntBinFn ibin, FloatBinFn fbin) {
  const TagClass ca = masked_tag_class(atag, mask, n);
  const TagClass cb =
      ca == TagClass::Mixed ? TagClass::Mixed : masked_tag_class(btag, mask, n);
  if (ca == TagClass::Int && cb == TagClass::Int) {
    int r = ibin(op, ai, bi, 0, oi, n);
    if (r == kUnhandled) r = int_bin_portable(op, ai, bi, 0, oi, n);
    finish(r, otag, oi, of, n);  // every int binary op is handled
    return;
  }
  if (ca != TagClass::Mixed && cb != TagClass::Mixed) {
    // At least one side uniformly Float: ir::arith takes the
    // either_float path. Promote an Int side full-width (defined).
    int r = kUnhandled;
    if (ca == TagClass::Float && cb == TagClass::Float)
      r = fbin(op, af, bf, 0.0, oi, of, n);
    if (r == kUnhandled)
      r = float_bin_go(
          op,
          [&](std::size_t k) {
            return ca == TagClass::Int ? static_cast<double>(ai[k]) : af[k];
          },
          [&](std::size_t k) {
            return cb == TagClass::Int ? static_cast<double>(bi[k]) : bf[k];
          },
          oi, of, n);
    if (r != kUnhandled) {
      finish(r, otag, oi, of, n);
      return;
    }
  }
  bin_masked_elem(op, atag, ai, af, btag, bi, bf, otag, oi, of, mask, n);
}

void bin_imm_dispatch(Opcode op, const std::uint8_t* atag,
                      const std::int64_t* ai, const double* af, const Value& b,
                      std::uint8_t* otag, std::int64_t* oi, double* of,
                      const std::uint64_t* mask, std::size_t n, IntBinFn ibin,
                      FloatBinFn fbin) {
  const TagClass ca = masked_tag_class(atag, mask, n);
  if (ca == TagClass::Int && b.is_int()) {
    int r = ibin(op, ai, nullptr, b.i, oi, n);
    if (r == kUnhandled) r = int_bin_portable(op, ai, nullptr, b.i, oi, n);
    finish(r, otag, oi, of, n);
    return;
  }
  if (ca != TagClass::Mixed) {
    const double y = b.as_double();
    int r = kUnhandled;
    if (ca == TagClass::Float) r = fbin(op, af, nullptr, y, oi, of, n);
    if (r == kUnhandled)
      r = float_bin_go(
          op,
          [&](std::size_t k) {
            return ca == TagClass::Int ? static_cast<double>(ai[k]) : af[k];
          },
          [y](std::size_t) { return y; }, oi, of, n);
    if (r != kUnhandled) {
      finish(r, otag, oi, of, n);
      return;
    }
  }
  bin_imm_masked_elem(op, atag, ai, af, b, otag, oi, of, mask, n);
}

/// Unary ops; shared by every ISA table (unary lanes are rare and cheap).
void un_portable(Opcode op, const std::uint8_t* atag, const std::int64_t* ai,
                 const double* af, std::uint8_t* otag, std::int64_t* oi,
                 double* of, const std::uint64_t* mask, std::size_t n) {
  const TagClass ca = masked_tag_class(atag, mask, n);
  switch (op) {
    case Opcode::Neg:
      if (ca == TagClass::Int) {
        for (std::size_t k = 0; k < n; ++k)
          oi[k] = static_cast<std::int64_t>(-static_cast<std::uint64_t>(ai[k]));
        finish_int(otag, of, n);
        return;
      }
      if (ca == TagClass::Float) {
        for (std::size_t k = 0; k < n; ++k) of[k] = -af[k];
        finish_float(otag, oi, n);
        return;
      }
      break;
    case Opcode::Not:
      if (ca == TagClass::Int) {
        for (std::size_t k = 0; k < n; ++k) oi[k] = ai[k] == 0 ? 1 : 0;
        finish_int(otag, of, n);
        return;
      }
      if (ca == TagClass::Float) {
        for (std::size_t k = 0; k < n; ++k) oi[k] = af[k] == 0.0 ? 1 : 0;
        finish_int(otag, of, n);
        return;
      }
      break;
    case Opcode::BitNot:
      if (ca == TagClass::Int) {
        for (std::size_t k = 0; k < n; ++k) oi[k] = ~ai[k];
        finish_int(otag, of, n);
        return;
      }
      break;  // float→int conversion: masked elementwise only
    case Opcode::CastI:
      if (ca == TagClass::Int) {
        for (std::size_t k = 0; k < n; ++k) oi[k] = ai[k];
        finish_int(otag, of, n);
        return;
      }
      break;  // float→int conversion: masked elementwise only
    case Opcode::CastF:
      if (ca == TagClass::Int) {
        for (std::size_t k = 0; k < n; ++k) of[k] = static_cast<double>(ai[k]);
        finish_float(otag, oi, n);
        return;
      }
      if (ca == TagClass::Float) {
        for (std::size_t k = 0; k < n; ++k) of[k] = af[k];
        finish_float(otag, oi, n);
        return;
      }
      break;
    default:
      break;
  }
  for_each_lane_bit(mask, n / 64, [&](std::size_t k) {
    const Value a = lane_value(atag, ai, af, k);
    Value r;
    switch (op) {
      case Opcode::Neg:
        r = a.is_float() ? Value::of_float(-a.f)
                         : Value::of_int(static_cast<std::int64_t>(
                               -static_cast<std::uint64_t>(a.i)));
        break;
      case Opcode::Not: r = Value::of_int(!a.truthy()); break;
      case Opcode::BitNot: r = Value::of_int(~a.as_int()); break;
      case Opcode::CastI: r = Value::of_int(a.as_int()); break;
      default: r = Value::of_float(a.as_double()); break;  // CastF
    }
    put_value(otag, oi, of, k, r);
  });
}

// ------------------------------------------------------------- ISA tables

void bin_portable_entry(Opcode op, const std::uint8_t* atag,
                        const std::int64_t* ai, const double* af,
                        const std::uint8_t* btag, const std::int64_t* bi,
                        const double* bf, std::uint8_t* otag, std::int64_t* oi,
                        double* of, const std::uint64_t* mask, std::size_t n) {
  bin_dispatch(op, atag, ai, af, btag, bi, bf, otag, oi, of, mask, n,
               int_bin_portable, float_bin_portable);
}

void bin_imm_portable_entry(Opcode op, const std::uint8_t* atag,
                            const std::int64_t* ai, const double* af,
                            const Value& b, std::uint8_t* otag,
                            std::int64_t* oi, double* of,
                            const std::uint64_t* mask, std::size_t n) {
  bin_imm_dispatch(op, atag, ai, af, b, otag, oi, of, mask, n,
                   int_bin_portable, float_bin_portable);
}

#if defined(__x86_64__) && !defined(MSC_SIMD_ISA_SCALAR)
void bin_avx2_entry(Opcode op, const std::uint8_t* atag, const std::int64_t* ai,
                    const double* af, const std::uint8_t* btag,
                    const std::int64_t* bi, const double* bf,
                    std::uint8_t* otag, std::int64_t* oi, double* of,
                    const std::uint64_t* mask, std::size_t n) {
  bin_dispatch(op, atag, ai, af, btag, bi, bf, otag, oi, of, mask, n,
               int_bin_avx2, float_bin_avx2);
}

void bin_imm_avx2_entry(Opcode op, const std::uint8_t* atag,
                        const std::int64_t* ai, const double* af,
                        const Value& b, std::uint8_t* otag, std::int64_t* oi,
                        double* of, const std::uint64_t* mask, std::size_t n) {
  bin_imm_dispatch(op, atag, ai, af, b, otag, oi, of, mask, n, int_bin_avx2,
                   float_bin_avx2);
}
#endif

#if defined(__aarch64__) && !defined(MSC_SIMD_ISA_SCALAR)
void bin_neon_entry(Opcode op, const std::uint8_t* atag, const std::int64_t* ai,
                    const double* af, const std::uint8_t* btag,
                    const std::int64_t* bi, const double* bf,
                    std::uint8_t* otag, std::int64_t* oi, double* of,
                    const std::uint64_t* mask, std::size_t n) {
  bin_dispatch(op, atag, ai, af, btag, bi, bf, otag, oi, of, mask, n,
               int_bin_neon, float_bin_neon);
}

void bin_imm_neon_entry(Opcode op, const std::uint8_t* atag,
                        const std::int64_t* ai, const double* af,
                        const Value& b, std::uint8_t* otag, std::int64_t* oi,
                        double* of, const std::uint64_t* mask, std::size_t n) {
  bin_imm_dispatch(op, atag, ai, af, b, otag, oi, of, mask, n, int_bin_neon,
                   float_bin_neon);
}
#endif

const LaneKernels kPortableKernels{bin_portable_entry, bin_imm_portable_entry,
                                   un_portable};
#if defined(__x86_64__) && !defined(MSC_SIMD_ISA_SCALAR)
const LaneKernels kAvx2Kernels{bin_avx2_entry, bin_imm_avx2_entry, un_portable};
#endif
#if defined(__aarch64__) && !defined(MSC_SIMD_ISA_SCALAR)
const LaneKernels kNeonKernels{bin_neon_entry, bin_imm_neon_entry, un_portable};
#endif

}  // namespace

const LaneKernels& lane_kernels(SimdIsa isa) {
#if defined(__x86_64__) && !defined(MSC_SIMD_ISA_SCALAR)
  if (isa == SimdIsa::Avx2) return kAvx2Kernels;
#endif
#if defined(__aarch64__) && !defined(MSC_SIMD_ISA_SCALAR)
  if (isa == SimdIsa::Neon) return kNeonKernels;
#endif
  (void)isa;
  return kPortableKernels;
}

}  // namespace msc::simd
