#ifndef MSC_SIMD_LANES_HPP
#define MSC_SIMD_LANES_HPP

// Lane-major PE state store and whole-lane execution backend.
//
// The store lays every PE's copy of a local-memory cell out contiguously
// (structure-of-arrays per variable: one kind-tag lane, one int lane, one
// float lane per address), padded to a 64-PE boundary so enable masks are
// whole 64-bit words aligned with DynBitset's backing words. The engines
// no longer own PE memory: ReferenceSimdMachine interprets scalar PE views
// of this store, while the occupancy engines may execute maximal
// same-guard op runs lane-at-a-time through LaneExecutor under a host ISA
// from msc/support/simd_isa.hpp.
//
// Semantics contract: whichever path executes, memories, SimdStats,
// visits, tracer streams and profiles are bit-identical to the scalar
// reference engine (simd_differential_test pins it). The lane plan
// therefore mirrors the scalar order exactly: ops that cannot be proven
// lane-safe fall back to per-PE spans in ascending PE id, partial results
// are materialized onto the real per-PE stacks at every boundary, and
// fault messages/ordering match the scalar interpreter.

#include <cstdint>
#include <memory>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/codegen/translate.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/exec.hpp"
#include "msc/support/simd_isa.hpp"

namespace msc::simd {

/// Iterate the set bits of a lane mask in ascending PE id (the reference
/// engine's 0..nprocs broadcast order).
template <typename F>
inline void for_each_lane_bit(const std::uint64_t* mask, std::size_t nwords,
                              F&& f) {
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t m = mask[w];
    while (m != 0) {
      const int bit = __builtin_ctzll(m);
      f(w * 64 + static_cast<std::size_t>(bit));
      m &= m - 1;
    }
  }
}

/// Owns all PE-resident state of a SIMD machine: local memories as
/// lane-major SoA (element (addr, pe) lives at addr * width() + pe in each
/// of the three payload arrays) plus the per-PE operand stacks. width() is
/// nprocs rounded up to a multiple of 64; the pad elements stay zeroed
/// Value{}s and are never enabled by any mask.
class LaneStore {
 public:
  LaneStore(std::int64_t nprocs, std::int64_t cells);

  std::int64_t nprocs() const { return nprocs_; }
  std::int64_t width() const { return width_; }
  std::int64_t cells() const { return cells_; }
  std::size_t mask_words() const {
    return static_cast<std::size_t>(width_) / 64;
  }

  Value load(std::int64_t pe, std::int64_t addr) const {
    return pe_view_const(pe).get(addr);
  }
  void store(std::int64_t pe, std::int64_t addr, const Value& v) {
    pe_view(pe).put(addr, v);
  }

  /// Scalar window for exec_instr: base pointers pre-offset by `pe`,
  /// stride = width().
  ir::LocalView pe_view(std::int64_t pe) {
    return {tags_.data() + pe, ints_.data() + pe, floats_.data() + pe,
            static_cast<std::size_t>(width_), cells_};
  }

  std::uint8_t* tag_lane(std::int64_t addr) {
    return tags_.data() + static_cast<std::size_t>(addr * width_);
  }
  std::int64_t* int_lane(std::int64_t addr) {
    return ints_.data() + static_cast<std::size_t>(addr * width_);
  }
  double* float_lane(std::int64_t addr) {
    return floats_.data() + static_cast<std::size_t>(addr * width_);
  }

  std::vector<Value>& stack(std::int64_t pe) {
    return stacks_[static_cast<std::size_t>(pe)];
  }
  const std::vector<Value>& stack(std::int64_t pe) const {
    return stacks_[static_cast<std::size_t>(pe)];
  }

  /// Spawn reset: zero the PE's local column and clear its stack.
  void clear_pe(std::int64_t pe);

  /// Seed one address across all PEs from per-PE integers
  /// (vals[0..nprocs)): one memcpy into the int lane, tag/float lanes
  /// zeroed — byte-identical to nprocs scalar of_int stores.
  void fill_int_lane(std::int64_t addr, const std::int64_t* vals,
                     std::int64_t n);

 private:
  ir::LocalView pe_view_const(std::int64_t pe) const {
    return {const_cast<std::uint8_t*>(tags_.data()) + pe,
            const_cast<std::int64_t*>(ints_.data()) + pe,
            const_cast<double*>(floats_.data()) + pe,
            static_cast<std::size_t>(width_), cells_};
  }

  std::int64_t nprocs_;
  std::int64_t width_;
  std::int64_t cells_;
  std::vector<std::uint8_t> tags_;
  std::vector<std::int64_t> ints_;
  std::vector<double> floats_;
  std::vector<std::vector<Value>> stacks_;
};

/// One lane-level operation of a lowered same-guard run. The virtual
/// operand stack the ops manipulate holds whole lanes; `Materialize`
/// flushes it onto the real per-PE stacks whenever scalar code (or the
/// end of the run) needs them there.
enum class LOpKind : std::uint8_t {
  PushLane,       ///< broadcast instr.imm
  LoadLane,       ///< push copy of local lane [n] (bounds-checked once)
  StoreLane,      ///< masked scatter of top into local lane [n]; pop
  BroadcastMono,  ///< push broadcast of mono[n]
  StoreMono,      ///< pop; per enabled PE ascending: mono[n] = elem
  LdDynLane,      ///< pop addr lane; push per-PE local[addr] gather
  StDynLane,      ///< pop addr, pop value; per-PE local[addr] scatter
  LdMDynLane,     ///< pop addr lane; push per-PE mono_load gather
  StMDynLane,     ///< pop addr, pop value; per-PE mono_store
  RouteLdLane,    ///< pop proc, pop addr; push per-PE route_load
  RouteStLane,    ///< pop proc, addr, value; per-PE route_store
  BinLane,        ///< pop b; top = eval_binary(instr.op, top, b)
  BinImmLane,     ///< top = eval_binary(instr.op, top, instr.imm)
  UnLane,         ///< top = unary(instr.op, top)
  DupLane,
  SwapLane,
  PopLane,        ///< drop n virtual slots
  ProcIdLane,     ///< push iota
  NProcsLane,     ///< push broadcast nprocs
  SetPcLane,      ///< enabled PEs: next_pc = a
  CondSetPcLane,  ///< pop cond; enabled PEs: next_pc = truthy ? a : b
  HaltPcLane,     ///< enabled PEs: next_pc = none
  Materialize,    ///< push all virtual slots (bottom-up) onto real stacks
  ScalarSpan,     ///< engine executes source ops [src, src_end) per PE
};

struct LOp {
  LOpKind kind;
  ir::Instr instr{ir::Opcode::PushI, {}};
  ir::StateId a = ir::kNoState;
  ir::StateId b = ir::kNoState;
  std::int64_t n = 0;        ///< address / pop count
  std::int32_t src = 0;      ///< ScalarSpan: first source-op index
  std::int32_t src_end = 0;  ///< ScalarSpan: one past the last index
};

/// One maximal same-guard run of a meta state's ops, lowered to lane code.
struct LaneRun {
  std::int32_t first = 0;  ///< source-op range [first, end) in the state
  std::int32_t end = 0;
  std::vector<LOp> code;
  std::int32_t max_depth = 0;  ///< peak virtual-stack depth
  /// Fast-engine charge aggregates over the ORIGINAL ops (codegen groups
  /// keep their own TGroup aggregates): Σ op-cost and the guard-switch
  /// count (always 1 — runs split exactly at new_guard boundaries).
  std::int64_t cost_sum = 0;
};

struct LanePlan {
  std::vector<LaneRun> runs;
  std::int32_t max_depth = 0;
};

/// Lower a meta state's SOp stream (fast engine) into same-guard runs.
LanePlan build_lane_plan(const std::vector<codegen::SOp>& code,
                         const ir::CostModel& cost);
/// Lower a translated state (codegen engine): one run per TGroup, source
/// indices relative to that group's TOp stream.
LanePlan build_lane_plan(const codegen::TransState& ts);

/// Elementwise kernels over whole lanes, dispatched per host ISA. Inputs
/// are fully defined across the padded width; outputs are written fully
/// defined (disabled elements may hold garbage values but never trap
/// representations), and per-element results on enabled lanes are
/// bit-identical to ir::eval_binary / the scalar unary ops. `dst` may
/// alias `a`.
struct LaneKernels {
  using BinFn = void (*)(ir::Opcode op, const std::uint8_t* atag,
                         const std::int64_t* ai, const double* af,
                         const std::uint8_t* btag, const std::int64_t* bi,
                         const double* bf, std::uint8_t* otag,
                         std::int64_t* oi, double* of,
                         const std::uint64_t* mask, std::size_t n);
  using BinImmFn = void (*)(ir::Opcode op, const std::uint8_t* atag,
                            const std::int64_t* ai, const double* af,
                            const Value& b, std::uint8_t* otag,
                            std::int64_t* oi, double* of,
                            const std::uint64_t* mask, std::size_t n);
  using UnFn = void (*)(ir::Opcode op, const std::uint8_t* atag,
                        const std::int64_t* ai, const double* af,
                        std::uint8_t* otag, std::int64_t* oi, double* of,
                        const std::uint64_t* mask, std::size_t n);
  BinFn bin = nullptr;
  BinImmFn bin_imm = nullptr;
  UnFn un = nullptr;
};

/// Kernel table for a resolved ISA (Avx2/Neon when compiled for this
/// host, otherwise portable scalar loops over whole lanes).
const LaneKernels& lane_kernels(SimdIsa isa);

/// Engine services the executor cannot perform itself: per-PE execution
/// of a ScalarSpan (in the engine's own source-op form) and next-pc
/// writes (which must maintain the engine's moved_ bookkeeping).
class LaneHost {
 public:
  virtual void lane_scalar_span(std::int32_t first, std::int32_t end,
                                const std::uint64_t* mask,
                                std::size_t nwords) = 0;
  virtual void lane_set_next_pc(std::int64_t pe, ir::StateId target) = 0;

 protected:
  ~LaneHost() = default;
};

/// Executes lowered lane runs against a LaneStore. One instance per
/// machine; lane buffers are pooled and grown to the deepest plan seen.
class LaneExecutor {
 public:
  LaneExecutor(LaneStore& store, ir::MemoryBus& bus, std::int64_t nprocs,
               SimdIsa isa);

  /// Execute one run under `mask` (mask_words() words; at least one bit
  /// set). Faults propagate as ir::MachineFault with scalar-identical
  /// messages.
  void run(const LaneRun& r, const std::uint64_t* mask, LaneHost& host);

 private:
  struct LaneBuf {
    std::vector<std::uint8_t> tag;
    std::vector<std::int64_t> ival;
    std::vector<double> fval;
  };

  void ensure_depth(std::int32_t depth);
  LaneBuf& slot(std::int32_t d) {
    return bufs_[static_cast<std::size_t>(slot_buf_[static_cast<std::size_t>(d)])];
  }
  LaneBuf& push_slot();
  Value slot_value(const LaneBuf& b, std::size_t k) const {
    Value v;
    v.kind = static_cast<Value::Kind>(b.tag[k]);
    v.i = b.ival[k];
    v.f = b.fval[k];
    return v;
  }
  void materialize(const std::uint64_t* mask);

  LaneStore& store_;
  ir::MemoryBus& bus_;
  std::int64_t nprocs_;
  std::size_t width_;
  std::size_t nwords_;
  const LaneKernels* kernels_;
  std::vector<LaneBuf> bufs_;
  std::vector<std::int32_t> slot_buf_;  ///< slot depth -> buffer index
  std::int32_t depth_ = 0;
};

}  // namespace msc::simd

#endif  // MSC_SIMD_LANES_HPP
