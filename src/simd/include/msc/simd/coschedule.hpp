#ifndef MSC_SIMD_COSCHEDULE_HPP
#define MSC_SIMD_COSCHEDULE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "msc/simd/machine.hpp"

namespace msc::simd {

/// MASIM-style co-scheduling (PAPERS.md): several independently converted
/// meta-state automata time-share one simulated SIMD machine. Exactly one
/// automaton's control unit owns the array per scheduling turn — the
/// others' PEs stay resident but idle. The scheduler therefore charges,
/// per executed step of control cost c, `c × alive(P)` *held* PE-cycles
/// to the running program P and `c × alive(Q)` *idle* PE-cycles to every
/// other unfinished program Q. Machine-level utilization is
/// busy / (held + idle): programs that shed PEs early (halt) make their
/// tails cheap to preempt, which is where co-scheduling beats the best
/// sequential order (EXPERIMENTS.md T-COSCHED).
enum class CoPolicy : std::uint8_t {
  /// Run each program to completion in (shuffled) order — the baseline
  /// co-scheduling must beat.
  Sequential,
  /// Cycle through unfinished programs, one quantum each.
  RoundRobin,
  /// Always run the unfinished program with the most alive PEs (ties →
  /// earlier in the shuffled order): the waiting set is kept as small as
  /// possible, so idle PE-cycles accrue at the lowest available rate.
  GreedyOccupancy,
};

/// Parse "sequential" / "rr" / "greedy" (mscc --cosched-policy). Throws
/// std::invalid_argument on anything else.
CoPolicy parse_copolicy(const std::string& name);
const char* copolicy_name(CoPolicy policy);

struct CoOptions {
  CoPolicy policy = CoPolicy::RoundRobin;
  /// Deterministically shuffles the program order before scheduling; the
  /// whole run is a pure function of (programs, policy, seed, quantum).
  std::uint64_t seed = 1;
  /// Meta-state steps a program executes per scheduling turn.
  std::int64_t quantum = 1;
  /// Explicit program order (a permutation of [0, size)); overrides the
  /// seeded shuffle when non-empty. Lets callers enumerate every
  /// Sequential order exactly (bench_kernels' best-sequential baseline).
  std::vector<std::size_t> order;
};

/// Per-program outcome and attribution. `stats`/`visits`/`profile` are
/// the program's own execution exactly as a standalone run would produce
/// them; summed over programs they reproduce CoResult::machine bit-exactly
/// (coschedule_test pins this).
struct CoProgramResult {
  std::string name;
  std::int64_t pes = 0;    ///< partition width (the sub-machine's nprocs)
  std::int64_t steps = 0;  ///< executed meta-state steps
  /// Machine clock (control cycles) when this program exited.
  std::int64_t completion_cycle = 0;
  /// Σ own-step control cost × own alive PEs at step entry.
  std::int64_t held_pe_cycles = 0;
  /// Σ other programs' step cost × own alive PEs while waiting.
  std::int64_t idle_pe_cycles = 0;
  SimdStats stats;
  std::vector<std::int64_t> visits;
  std::vector<StateProfile> profile;  ///< empty unless profiling enabled
  /// simd::to_json of the finished sub-machine (spliced into the
  /// co-scheduled profile document for mscprof).
  std::string run_json;

  double utilization() const { return stats.utilization(); }
};

struct CoResult {
  CoPolicy policy = CoPolicy::RoundRobin;
  std::uint64_t seed = 0;
  std::int64_t quantum = 1;
  std::int64_t machine_pes = 0;  ///< Σ partition widths
  /// Machine clock at the end: Σ all programs' control cycles (one shared
  /// control unit — turns never overlap).
  std::int64_t elapsed_control_cycles = 0;
  /// Field-wise Σ of per-step stats deltas across all programs.
  SimdStats machine;
  std::int64_t held_pe_cycles = 0;
  std::int64_t idle_pe_cycles = 0;
  std::vector<CoProgramResult> programs;

  /// Array-level utilization: work done over PE-cycles the array was
  /// occupied for (running + waiting resident programs).
  double machine_utilization() const {
    const std::int64_t denom = held_pe_cycles + idle_pe_cycles;
    return denom == 0 ? 1.0
                      : static_cast<double>(machine.busy_pe_cycles) /
                            static_cast<double>(denom);
  }
};

/// Owns the sub-machines and multiplexes them. Typical use:
///   CoScheduler cs;
///   cs.add_program("reduce@65", make_machine(prog, cost, config));
///   ...seed/enable_profiling via cs.machine(i)...
///   CoResult r = cs.run(opts);
class CoScheduler {
 public:
  /// Register a freshly constructed (never stepped) machine. The name is
  /// a display label; duplicates are allowed.
  void add_program(std::string name, std::unique_ptr<SimdMachine> machine);
  std::size_t size() const { return programs_.size(); }
  SimdMachine& machine(std::size_t i) { return *programs_[i].machine; }

  /// Run every program to completion under `options`. May be called once
  /// per scheduler. Throws std::logic_error when empty or re-run.
  CoResult run(const CoOptions& options);

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<SimdMachine> machine;
  };
  std::vector<Entry> programs_;
  bool ran_ = false;
};

/// Render the co-scheduled profile document (mscc --coschedule with
/// --profile-simd/--trace-simd; schema in DESIGN.md §12): machine-level
/// totals plus one embedded simd::to_json per program under "programs".
std::string to_json(const CoResult& result);

}  // namespace msc::simd

#endif  // MSC_SIMD_COSCHEDULE_HPP
