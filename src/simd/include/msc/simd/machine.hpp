#ifndef MSC_SIMD_MACHINE_HPP
#define MSC_SIMD_MACHINE_HPP

#include <cstdint>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/exec.hpp"
#include "msc/mimd/machine.hpp"  // RunConfig, Timeout

namespace msc::simd {

struct SimdStats {
  /// Cycles consumed by the single control unit (everything is serialized
  /// through it: guarded bodies, pc updates, global-ors, dispatches).
  std::int64_t control_cycles = 0;
  /// Σ op-cost × enabled PEs — actual work done.
  std::int64_t busy_pe_cycles = 0;
  /// Σ op-cost × alive PEs — work capacity offered while code ran.
  std::int64_t offered_pe_cycles = 0;
  std::int64_t meta_transitions = 0;
  std::int64_t global_ors = 0;
  /// Enable-mask reprogrammings (one per `if (pc & …)` boundary).
  std::int64_t guard_switches = 0;
  std::int64_t spawns = 0;
  /// PaperPrune/fold-collision transitions resolved via the member index
  /// instead of the hashed switch (see DESIGN.md §2.6 discussion).
  std::int64_t rescue_transitions = 0;

  /// PE utilization while executing meta-state bodies (§2.4 motivates
  /// time splitting with "up to 95% of its processor cycles ... waiting").
  double utilization() const {
    return offered_pe_cycles == 0
               ? 1.0
               : static_cast<double>(busy_pe_cycles) /
                     static_cast<double>(offered_pe_cycles);
  }
};

/// Observer for meta-state execution (tracing/visualization). Callbacks
/// fire synchronously from run()/step(); implementations must not mutate
/// the machine.
class SimdTracer {
 public:
  virtual ~SimdTracer() = default;
  /// Before a meta state's code runs: which MIMD states are occupied and
  /// how many PEs are alive.
  virtual void on_state(core::MetaId id, const DynBitset& occupancy,
                        std::int64_t alive) = 0;
  /// After the transition is resolved (to == kNoMeta on exit).
  virtual void on_transition(core::MetaId from, core::MetaId to,
                             const DynBitset& apc) = 0;
};

/// MasPar-MP-1-like SIMD array executing a meta-state SIMD program: one
/// control unit walking the automaton, N PEs holding only data (§1.2: "PEs
/// merely hold data"), per-PE enable bits derived from the pc guards, a
/// global-or network for aggregate pcs, and a router for parallel
/// subscripts. Per-PE program memory footprint is zero by construction.
class SimdMachine : public ir::MemoryBus {
 public:
  SimdMachine(const codegen::SimdProgram& program, const ir::CostModel& cost,
              const mimd::RunConfig& config);

  void poke(std::int64_t proc, std::int64_t addr, Value v);
  Value peek(std::int64_t proc, std::int64_t addr) const;
  void poke_mono(std::int64_t addr, Value v);
  Value peek_mono(std::int64_t addr) const;

  void run();

  /// Attach an execution observer (nullptr to detach).
  void set_tracer(SimdTracer* tracer) { tracer_ = tracer; }

  /// Execute one meta state and take its transition. Returns false once
  /// the automaton exits (nothing executed then). Lets examples/benches
  /// trace occupancy over time.
  bool step();
  core::MetaId current_state() const { return cur_; }
  std::int64_t alive_count() const;

  const SimdStats& stats() const { return stats_; }
  bool ever_ran(std::int64_t proc) const { return pes_[proc].ever_ran; }
  /// Per-meta-state execution counts (benches).
  const std::vector<std::int64_t>& state_visits() const { return visits_; }

  // MemoryBus:
  Value mono_load(std::int64_t addr) override;
  void mono_store(std::int64_t addr, Value v) override;
  Value route_load(std::int64_t proc, std::int64_t addr) override;
  void route_store(std::int64_t proc, std::int64_t addr, Value v) override;

 private:
  struct Pe {
    ir::StateId pc = ir::kNoState;
    ir::StateId next_pc = ir::kNoState;
    bool ever_ran = false;
    std::vector<Value> local;
    std::vector<Value> stack;
  };

  bool alive(const Pe& pe) const { return pe.pc != ir::kNoState; }
  void exec_state(const codegen::MetaCode& mc);
  core::MetaId next_state(const codegen::MetaCode& mc);
  DynBitset aggregate_pc() const;
  void check_local(std::int64_t proc, std::int64_t addr) const;

  const codegen::SimdProgram& prog_;
  const ir::CostModel& cost_;
  mimd::RunConfig config_;
  std::vector<Pe> pes_;
  std::vector<Value> mono_;
  SimdStats stats_;
  std::vector<std::int64_t> visits_;
  core::MetaId cur_ = core::kNoMeta;  ///< next meta state step() will run
  bool finished_ = false;
  SimdTracer* tracer_ = nullptr;
};

}  // namespace msc::simd

#endif  // MSC_SIMD_MACHINE_HPP
