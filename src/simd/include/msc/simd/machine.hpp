#ifndef MSC_SIMD_MACHINE_HPP
#define MSC_SIMD_MACHINE_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/codegen/translate.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/exec.hpp"
#include "msc/mimd/machine.hpp"  // RunConfig, SimdEngine, Timeout
#include "msc/simd/lanes.hpp"
#include "msc/support/simd_isa.hpp"

namespace msc::telemetry {
class TraceSink;
}

namespace msc::simd {

struct SimdStats {
  /// Cycles consumed by the single control unit (everything is serialized
  /// through it: guarded bodies, pc updates, global-ors, dispatches).
  std::int64_t control_cycles = 0;
  /// Σ op-cost × enabled PEs — actual work done.
  std::int64_t busy_pe_cycles = 0;
  /// Σ op-cost × alive PEs — work capacity offered while code ran.
  std::int64_t offered_pe_cycles = 0;
  std::int64_t meta_transitions = 0;
  std::int64_t global_ors = 0;
  /// Enable-mask reprogrammings (one per `if (pc & …)` boundary).
  std::int64_t guard_switches = 0;
  std::int64_t spawns = 0;
  /// PaperPrune/fold-collision transitions resolved via the member index
  /// instead of the hashed switch (see DESIGN.md §2.6 discussion).
  std::int64_t rescue_transitions = 0;
  /// Router traversals (parallel-subscript loads/stores through the
  /// inter-PE network). Counted in the shared MemoryBus layer, so both
  /// engines agree by construction.
  std::int64_t router_ops = 0;

  /// PE utilization while executing meta-state bodies (§2.4 motivates
  /// time splitting with "up to 95% of its processor cycles ... waiting").
  double utilization() const {
    return offered_pe_cycles == 0
               ? 1.0
               : static_cast<double>(busy_pe_cycles) /
                     static_cast<double>(offered_pe_cycles);
  }

  bool operator==(const SimdStats& o) const = default;
};

/// Per-meta-state execution profile (§2.4's utilization lens applied per
/// state rather than per run). Accumulated in the engine-independent
/// step() skeleton from SimdStats deltas, so (a) both engines produce
/// bit-identical profiles and (b) summing any cycle field over all states
/// reproduces the run's SimdStats total exactly — `mscprof` and the
/// observability tests rely on both properties.
struct StateProfile {
  /// Power-of-two buckets over the enabled-PE count at state entry:
  /// bucket 0 ↔ 0 PEs, bucket k ↔ [2^(k-1), 2^k), last bucket open.
  static constexpr int kEnabledBuckets = 16;

  std::int64_t visits = 0;
  std::int64_t enabled_min = 0;  ///< fewest PEs alive at any entry
  std::int64_t enabled_max = 0;
  std::int64_t enabled_sum = 0;  ///< Σ over visits (mean = sum / visits)
  std::int64_t control_cycles = 0;   ///< broadcast + transition cost here
  std::int64_t busy_pe_cycles = 0;
  std::int64_t offered_pe_cycles = 0;
  std::int64_t global_ors = 0;
  std::int64_t guard_switches = 0;
  std::int64_t router_ops = 0;
  std::int64_t spawns = 0;
  std::array<std::int64_t, kEnabledBuckets> enabled_hist{};

  double utilization() const {
    return offered_pe_cycles == 0
               ? 1.0
               : static_cast<double>(busy_pe_cycles) /
                     static_cast<double>(offered_pe_cycles);
  }

  bool operator==(const StateProfile&) const = default;
};

/// Observer for meta-state execution (tracing/visualization). Callbacks
/// fire synchronously from run()/step(); implementations must not mutate
/// the machine. Attaching a tracer never changes the run's statistics:
/// both engines compute tracer inputs lazily (machine_test asserts this).
class SimdTracer {
 public:
  virtual ~SimdTracer() = default;
  /// Before a meta state's code runs: which MIMD states are occupied and
  /// how many PEs are alive.
  virtual void on_state(core::MetaId id, const DynBitset& occupancy,
                        std::int64_t alive) = 0;
  /// After the transition is resolved (to == kNoMeta on exit).
  virtual void on_transition(core::MetaId from, core::MetaId to,
                             const DynBitset& apc) = 0;
};

/// MasPar-MP-1-like SIMD array executing a meta-state SIMD program: one
/// control unit walking the automaton, N PEs holding only data (§1.2: "PEs
/// merely hold data"), per-PE enable bits derived from the pc guards, a
/// global-or network for aggregate pcs, and a router for parallel
/// subscripts. Per-PE program memory footprint is zero by construction.
///
/// This is the engine-independent interface plus the shared substrate
/// (PE/mono memory, stats, visit counts, the step() skeleton and the
/// transition-table lookup). Three engines implement the per-broadcast hot
/// path — see mimd::SimdEngine and make_machine(); their observable
/// behaviour is bit-identical by contract (simd_differential_test).
class SimdMachine : public ir::MemoryBus {
 public:
  SimdMachine(const codegen::SimdProgram& program, const ir::CostModel& cost,
              const mimd::RunConfig& config);
  ~SimdMachine() override = default;

  void poke(std::int64_t proc, std::int64_t addr, Value v);
  Value peek(std::int64_t proc, std::int64_t addr) const;
  /// Seed one local cell across all PEs from a per-PE integer vector
  /// (vals.size() == nprocs): one memcpy into the int lane, byte-identical
  /// to nprocs scalar pokes of Value::of_int.
  void fill_lane(std::int64_t addr, const std::vector<std::int64_t>& vals);
  void poke_mono(std::int64_t addr, Value v);
  Value peek_mono(std::int64_t addr) const;

  void run();

  /// Publish run aggregates into MetricsRegistry::global() (mscc
  /// --metrics). run() calls this on clean completion; callers driving
  /// step() manually may call it themselves. Idempotent per machine.
  void publish_metrics();

  /// Attach an execution observer (nullptr to detach).
  void set_tracer(SimdTracer* tracer) { tracer_ = tracer; }

  /// Attach a Chrome-trace sink (nullptr to detach): every step() emits
  /// one complete event on the deterministic cycle timeline
  /// (telemetry::TraceSink::kSimdPid) carrying enabled-PE count, occupied
  /// meta-state members, and the step's global-or/router/cycle deltas.
  /// With no sink attached the per-step cost is one pointer test; stats,
  /// memories, and visits are unchanged either way (pinned by
  /// simd_differential_test and bench_scaling's T-OBS gate).
  void set_trace_sink(telemetry::TraceSink* sink) { trace_sink_ = sink; }

  /// Start accumulating per-meta-state profiles (mscc --profile-simd).
  /// Call before run(); idempotent. Profiling never changes observable
  /// execution — it only reads SimdStats deltas at step boundaries.
  void enable_profiling() {
    profile_.assign(prog_.states.size(), StateProfile{});
    profiling_ = true;
  }
  bool profiling() const { return profiling_; }
  /// Per-meta-state profiles (empty unless enable_profiling() was called).
  const std::vector<StateProfile>& profile() const { return profile_; }

  /// Execute one meta state and take its transition. Returns false once
  /// the automaton exits (nothing executed then). Lets examples/benches
  /// trace occupancy over time.
  bool step();
  core::MetaId current_state() const { return cur_; }
  virtual std::int64_t alive_count() const;
  /// Machine width (RunConfig::nprocs) — partition bookkeeping for the
  /// co-scheduler and reporting tools.
  std::int64_t nprocs() const { return config_.nprocs; }
  /// Resolved host ISA executing whole-lane broadcasts. Always Scalar for
  /// the reference engine (it is the scalar differential oracle).
  SimdIsa isa() const { return isa_; }

  /// "fast", "reference", or "codegen" (--trace-simd, bench labels).
  virtual const char* engine_name() const = 0;

  const SimdStats& stats() const { return stats_; }
  bool ever_ran(std::int64_t proc) const {
    return pes_[static_cast<std::size_t>(proc)].ever_ran;
  }
  /// Per-meta-state execution counts (benches, --trace-simd).
  const std::vector<std::int64_t>& state_visits() const { return visits_; }

  // MemoryBus:
  Value mono_load(std::int64_t addr) override;
  void mono_store(std::int64_t addr, Value v) override;
  Value route_load(std::int64_t proc, std::int64_t addr) override;
  void route_store(std::int64_t proc, std::int64_t addr, Value v) override;

 protected:
  /// Per-PE control state only: local memory and operand stacks moved to
  /// the shared lane-major store (lanes_), so the engines no longer own PE
  /// memory and whole-lane execution needs no per-PE indirection.
  struct Pe {
    ir::StateId pc = ir::kNoState;
    ir::StateId next_pc = ir::kNoState;
    bool ever_ran = false;
  };

  bool alive(const Pe& pe) const { return pe.pc != ir::kNoState; }

  /// Run one meta state's guarded broadcasts and commit the pc updates.
  virtual void exec_state(const codegen::MetaCode& mc) = 0;
  /// Produce the post-exec aggregate pc into *apc (a single computation
  /// per step, shared by the transition and the tracer) and resolve the
  /// exit transition via resolve_transition().
  virtual core::MetaId next_state(const codegen::MetaCode& mc,
                                  DynBitset* apc) = 0;
  /// Is any PE running? (pre-first-step emptiness check)
  virtual bool any_alive() const;
  /// Current occupancy for the tracer (only called when a tracer is set).
  virtual DynBitset occupancy() const { return aggregate_pc(); }

  /// Transition-table lookup shared by both engines: charges the static
  /// transition cost, counts global-ors, and resolves Direct/Multiway/
  /// rescue exactly as §3.2.1–3.2.4 prescribe.
  core::MetaId resolve_transition(const codegen::MetaCode& mc,
                                  const DynBitset& apc);
  /// O(nprocs) occupancy scan (reference path; tracer fallback).
  DynBitset aggregate_pc() const;
  void check_local(std::int64_t proc, std::int64_t addr) const;

  /// Validate nprocs/initial_active before any allocation (MachineFault on
  /// bad configs, matching the historical construction order).
  static std::int64_t validated_nprocs(const mimd::RunConfig& config);

  const codegen::SimdProgram& prog_;
  const ir::CostModel& cost_;
  mimd::RunConfig config_;
  /// Lane-major SoA local memories + per-PE operand stacks (all engines).
  LaneStore lanes_;
  SimdIsa isa_ = SimdIsa::Scalar;
  std::vector<Pe> pes_;
  std::vector<Value> mono_;
  SimdStats stats_;
  std::vector<std::int64_t> visits_;
  /// Attribute the stats delta of one executed step (state entry through
  /// transition) to `state`: profile accumulation and/or one trace event.
  void record_step(core::MetaId state, const SimdStats& pre,
                   std::int64_t pre_alive);

  core::MetaId cur_ = core::kNoMeta;  ///< next meta state step() will run
  bool finished_ = false;
  bool metrics_published_ = false;
  SimdTracer* tracer_ = nullptr;
  telemetry::TraceSink* trace_sink_ = nullptr;
  std::vector<StateProfile> profile_;
  bool profiling_ = false;
};

/// The original scalar implementation, kept compiled in forever as the
/// differential oracle: every broadcast scans all nprocs PEs against the
/// guard and the aggregate pc is a full rescan. The only indexed structure
/// it keeps is the spawn free-pool (`free_`), because the historical
/// from-zero rescan it replaces was O(nprocs) per spawn — quadratic on
/// spawn-heavy kernels — without being any more obviously correct:
/// first() IS the lowest-numbered free PE of §3.2.5's linear search.
class ReferenceSimdMachine final : public SimdMachine {
 public:
  ReferenceSimdMachine(const codegen::SimdProgram& program,
                       const ir::CostModel& cost,
                       const mimd::RunConfig& config);
  const char* engine_name() const override { return "reference"; }

 protected:
  void exec_state(const codegen::MetaCode& mc) override;
  core::MetaId next_state(const codegen::MetaCode& mc,
                          DynBitset* apc) override;

 private:
  /// PEs a spawn may claim: pc == none, no pending claim, and fresh per
  /// `reuse_halted_pes`. Maintained at the per-meta-state pc commit.
  DynBitset free_;
};

/// Shared substrate of the occupancy-indexed engines (Fast and Codegen):
/// per-MIMD-state PE sets, the incrementally maintained aggregate pc,
/// alive count and spawn pool, and the end-of-state pc commit. See
/// DESIGN.md §7 for the maintained invariants:
///   occ_[s] == { i | pes_[i].pc == s }, occ_count_[s] == |occ_[s]|,
///   apc_.test(s) == (occ_count_[s] > 0), alive_ == Σ occ_count_,
///   pes_[i].next_pc == pes_[i].pc between meta states, and free_ holds
///   exactly the PEs a spawn may claim. Within exec_state, pcs are frozen
///   (lockstep semantics) — only next_pc changes, each changed PE recorded
///   once in moved_.
class OccupancySimdMachine : public SimdMachine, protected LaneHost {
 public:
  OccupancySimdMachine(const codegen::SimdProgram& program,
                       const ir::CostModel& cost,
                       const mimd::RunConfig& config);
  std::int64_t alive_count() const override { return alive_; }

 protected:
  bool any_alive() const override { return alive_ > 0; }
  DynBitset occupancy() const override { return apc_; }

  /// LaneHost: next-pc write with moved_ bookkeeping (shared by the lane
  /// executors of both occupancy engines).
  void lane_set_next_pc(std::int64_t pe, ir::StateId target) override;
  /// OR the occ_ words of the occupied `guard_states` into lane_mask_;
  /// returns the enabled-PE count (Σ occ_count_ over those states).
  std::int64_t build_lane_mask(const std::vector<ir::StateId>& guard_states);
  /// Per-machine executor, built on first whole-lane run.
  LaneExecutor& lane_executor();

  /// Apply the next_pc of every PE in moved_, maintaining occ_/apc_/
  /// alive_/free_ incrementally (end of each meta state).
  void commit();
  /// §3.2.5 spawn: claim the lowest free PE for a child entering
  /// `child_entry`; `parent` continues at `cont`. Exact fault and
  /// child-choice semantics of the reference engine's linear search.
  void spawn_pe(Pe& parent, std::int64_t parent_id, ir::StateId child_entry,
                ir::StateId cont);

  /// occ_[s] = PE ids whose pc == s (bit order doubles as the PE-id
  /// execution order the reference engine uses); occ_count_[s] = |occ_[s]|.
  std::vector<DynBitset> occ_;
  std::vector<std::int64_t> occ_count_;
  /// Incremental aggregate pc: bit s set iff occ_count_[s] > 0.
  DynBitset apc_;
  std::int64_t alive_ = 0;
  /// PEs a spawn may claim (lowest-first; see ReferenceSimdMachine::free_).
  DynBitset free_;
  /// PEs with a pending next_pc ≠ pc this meta state (each PE executes at
  /// most one pc-writing op per state, so entries are unique).
  std::vector<std::int64_t> moved_;
  /// Count-limited iterator over one occupied state's PE set: `left`
  /// bounds the traversal so bits() never pays the trailing zero-word
  /// scan, keeping per-op host cost proportional to enabled PEs.
  struct OccCursor {
    const DynBitset* pes;
    std::size_t pos;
    std::int64_t left;
  };

  // Scratch reused across broadcasts (no per-op allocation).
  std::vector<ir::StateId> occupied_scratch_;
  std::vector<OccCursor> cursor_scratch_;
  /// Whole-lane enable mask (lanes_.mask_words() words), rebuilt per run.
  std::vector<std::uint64_t> lane_mask_;

 private:
  std::unique_ptr<LaneExecutor> lane_exec_;
};

/// Occupancy-indexed interpretive engine: each broadcast iterates only the
/// PEs whose pc is in the op's guard. Host cost per broadcast is
/// O(enabled PEs + occupied guard states), not O(nprocs).
class FastSimdMachine final : public OccupancySimdMachine {
 public:
  using OccupancySimdMachine::OccupancySimdMachine;
  const char* engine_name() const override { return "fast"; }

 protected:
  void exec_state(const codegen::MetaCode& mc) override;
  core::MetaId next_state(const codegen::MetaCode& mc,
                          DynBitset* apc) override;
  /// LaneHost: execute SOps [first, end) of the current state's code for
  /// every masked PE, op-outer / PE-inner (the reference scan order).
  void lane_scalar_span(std::int32_t first, std::int32_t end,
                        const std::uint64_t* mask,
                        std::size_t nwords) override;

 private:
  void exec_op(const codegen::SOp& op, std::int64_t pe);
  /// Whole-lane body (vector ISAs): one lowered run per same-guard span,
  /// stats charged per run with identical totals to the per-op path.
  void exec_state_lanes(const codegen::MetaCode& mc);
  const LanePlan& plan_for(const codegen::MetaCode& mc);

  /// Lazily lowered lane plans, indexed by meta-state id.
  std::vector<std::unique_ptr<LanePlan>> plans_;
  const std::vector<codegen::SOp>* cur_code_ = nullptr;  ///< span source
};

/// Translation-cache engine (DESIGN.md §11): at construction the program
/// body is compiled — through the process-global cache in
/// codegen/translate.hpp, so repeat runs of the same automaton skip the
/// work — into fused same-guard groups of constant-folded host ops.
/// exec_state then resolves each group's guard once, charges the group's
/// precomputed cycle aggregates, and dispatches the folded stream op-major
/// (threaded/computed-goto dispatch) over a flat enabled-PE list, in the
/// exact PE order the interpretive engines use. Observable behaviour —
/// memories, SimdStats, profiles, visits, tracer streams — stays
/// bit-identical to the reference oracle by construction.
class CodegenSimdMachine final : public OccupancySimdMachine {
 public:
  CodegenSimdMachine(const codegen::SimdProgram& program,
                     const ir::CostModel& cost, const mimd::RunConfig& config);
  const char* engine_name() const override { return "codegen"; }

 protected:
  void exec_state(const codegen::MetaCode& mc) override;
  core::MetaId next_state(const codegen::MetaCode& mc,
                          DynBitset* apc) override;
  /// LaneHost: execute TOps [first, end) of the current group for every
  /// masked PE, op-outer / PE-inner.
  void lane_scalar_span(std::int32_t first, std::int32_t end,
                        const std::uint64_t* mask,
                        std::size_t nwords) override;

 private:
  /// Fill enabled_scratch_ with the PEs occupying `guard_states`, in
  /// ascending PE id (the reference engine's 0..nprocs scan order).
  void gather_enabled(const std::vector<ir::StateId>& guard_states);
  /// Dispatch folded host ops [op, end) over enabled_scratch_ (the whole
  /// group on the scalar path; a ScalarSpan subrange on the lane path).
  void run_ops(const codegen::TOp* op, const codegen::TOp* end);
  /// Whole-lane body (vector ISAs): one lowered run per TGroup.
  void exec_state_lanes(const codegen::MetaCode& mc,
                        const codegen::TransState& ts);
  const LanePlan& plan_for(core::MetaId id, const codegen::TransState& ts);

  std::shared_ptr<const codegen::TransProgram> trans_;
  std::vector<std::int64_t> enabled_scratch_;
  /// Lazily lowered lane plans, indexed by meta-state id (per machine —
  /// the shared translation cache stays RunConfig/ISA-independent).
  std::vector<std::unique_ptr<LanePlan>> lane_plans_;
  const codegen::TGroup* cur_group_ = nullptr;  ///< span source
};

/// Build the engine selected by `config.engine`.
std::unique_ptr<SimdMachine> make_machine(const codegen::SimdProgram& program,
                                          const ir::CostModel& cost,
                                          const mimd::RunConfig& config);

/// Parse "fast"/"reference"/"codegen" (mscc --simd-engine); throws
/// std::invalid_argument on anything else.
mimd::SimdEngine parse_engine(const std::string& name);
/// Canonical name of an engine ("fast"/"reference"/"codegen").
const char* engine_name(mimd::SimdEngine engine);

/// JSON for --trace-simd / --profile-simd: engine name, cycle/utilization
/// stats, per-meta-state visit counts, and — when profiling was enabled —
/// a "profile" array with one StateProfile object per meta state. Schema
/// documented in DESIGN.md §7 and §10.
std::string to_json(const SimdMachine& machine);

}  // namespace msc::simd

#endif  // MSC_SIMD_MACHINE_HPP
