#include "msc/interp/machine.hpp"

#include <algorithm>
#include <set>

#include "msc/support/str.hpp"

namespace msc::interp {

using ir::ExitKind;
using ir::MachineFault;
using ir::Opcode;

namespace {

/// Number of data opcodes in the ISA (for the naive dispatch sweep).
constexpr std::int64_t kNumDataOpcodes = static_cast<std::int64_t>(Opcode::NProcs) + 1;
constexpr std::int64_t kNumControlOpcodes = 5;

std::int64_t op_word(Opcode op) { return static_cast<std::int64_t>(op); }

}  // namespace

InterpImage assemble(const ir::StateGraph& graph) {
  InterpImage img;
  img.block_entry.resize(graph.size(), 0);

  // Pass 1: layout. Three cells per instruction; barrier blocks get a
  // kWait; Spawn needs a following Jump for the parent's continuation.
  std::int64_t word = 0;
  for (const ir::Block& b : graph.blocks) {
    img.block_entry[b.id] = word;
    word += 3 * static_cast<std::int64_t>(b.body.size());
    if (b.barrier_wait) word += 3;
    switch (b.exit) {
      case ExitKind::Halt:
      case ExitKind::Jump:
      case ExitKind::Branch:
        word += 3;
        break;
      case ExitKind::Spawn:
        word += 6;
        break;
    }
  }
  img.words.reserve(static_cast<std::size_t>(word));

  auto emit = [&](std::int64_t op, std::int64_t a, std::int64_t b, double f) {
    img.words.push_back(op);
    img.words.push_back(a);
    img.words.push_back(b);
    img.fwords.push_back(f);
  };

  // Pass 2: code.
  for (const ir::Block& b : graph.blocks) {
    for (const ir::Instr& in : b.body)
      emit(op_word(in.op), in.imm.i, 0, in.imm.f);
    if (b.barrier_wait) emit(InterpImage::kWait, 0, 0, 0.0);
    switch (b.exit) {
      case ExitKind::Halt:
        emit(InterpImage::kHalt, 0, 0, 0.0);
        break;
      case ExitKind::Jump:
        emit(InterpImage::kJump, img.block_entry[b.target], 0, 0.0);
        break;
      case ExitKind::Branch:
        emit(InterpImage::kJumpF, img.block_entry[b.target],
             img.block_entry[b.alt], 0.0);
        break;
      case ExitKind::Spawn:
        emit(InterpImage::kSpawn, img.block_entry[b.target], 0, 0.0);
        emit(InterpImage::kJump, img.block_entry[b.alt], 0, 0.0);
        break;
    }
  }
  img.entry = img.block_entry[graph.start];
  return img;
}

InterpMachine::InterpMachine(const ir::StateGraph& graph, const ir::CostModel& cost,
                             const mimd::RunConfig& config, Dispatch dispatch)
    : graph_(graph), cost_(cost), config_(config), dispatch_(dispatch),
      image_(assemble(graph)) {
  if (config_.nprocs <= 0) throw MachineFault("nprocs must be positive");
  pes_.resize(static_cast<std::size_t>(config_.nprocs));
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    pe.local.assign(config_.local_mem_cells);
    if (i < config_.active()) {
      pe.pc = image_.entry;
      pe.ever_ran = true;
    }
  }
  mono_.assign(static_cast<std::size_t>(config_.mono_mem_cells), Value{});
  stats_.program_cells_per_pe = image_.cells_per_pe();
}

void InterpMachine::check_local(std::int64_t proc, std::int64_t addr) const {
  if (proc < 0 || proc >= config_.nprocs)
    throw MachineFault(cat("PE index out of range: ", proc));
  if (addr < 0 || addr >= config_.local_mem_cells)
    throw MachineFault(cat("local address out of range: ", addr));
}

void InterpMachine::poke(std::int64_t proc, std::int64_t addr, Value v) {
  check_local(proc, addr);
  pes_[static_cast<std::size_t>(proc)].local.set(addr, v);
}

Value InterpMachine::peek(std::int64_t proc, std::int64_t addr) const {
  check_local(proc, addr);
  return pes_[static_cast<std::size_t>(proc)].local.get(addr);
}

void InterpMachine::poke_mono(std::int64_t addr, Value v) {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  mono_[static_cast<std::size_t>(addr)] = v;
}

Value InterpMachine::peek_mono(std::int64_t addr) const {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  return mono_[static_cast<std::size_t>(addr)];
}

Value InterpMachine::mono_load(std::int64_t addr) { return peek_mono(addr); }
void InterpMachine::mono_store(std::int64_t addr, Value v) { poke_mono(addr, v); }
Value InterpMachine::route_load(std::int64_t proc, std::int64_t addr) {
  return peek(proc, addr);
}
void InterpMachine::route_store(std::int64_t proc, std::int64_t addr, Value v) {
  poke(proc, addr, v);
}

void InterpMachine::exec_one(std::int64_t pid, std::int64_t op, std::int64_t a,
                             std::int64_t b, double f) {
  Pe& pe = pes_[static_cast<std::size_t>(pid)];
  if (op < 1000) {
    ir::Instr in;
    in.op = static_cast<Opcode>(op);
    in.imm = in.op == Opcode::PushF ? Value::of_float(f) : Value::of_int(a);
    ir::PeContext ctx{pe.local.view(), &pe.stack, pid, config_.nprocs};
    ir::exec_instr(in, ctx, *this);
    pe.pc += 3;
    return;
  }
  switch (op) {
    case InterpImage::kJump:
      pe.pc = a;
      return;
    case InterpImage::kJumpF: {
      Value cond = ir::stack_pop(pe.stack);
      pe.pc = cond.truthy() ? a : b;
      return;
    }
    case InterpImage::kHalt:
      pe.pc = -1;
      return;
    case InterpImage::kWait:
      pe.waiting = true;  // stays at this word until everyone waits
      return;
    case InterpImage::kSpawn: {
      std::int64_t child = -1;
      for (std::int64_t c = 0; c < config_.nprocs; ++c) {
        const Pe& cp = pes_[static_cast<std::size_t>(c)];
        bool fresh = config_.reuse_halted_pes || !cp.ever_ran;
        if (cp.pc < 0 && fresh) {
          child = c;
          break;
        }
      }
      if (child < 0)
        throw MachineFault("spawn failed: no free processing element");
      Pe& ch = pes_[static_cast<std::size_t>(child)];
      ch.local.assign(config_.local_mem_cells);
      ch.stack.clear();
      ch.pc = a;
      ch.waiting = false;
      ch.ever_ran = true;
      ++stats_.spawns;
      pe.pc += 3;  // parent falls through to the continuation Jump
      return;
    }
    default:
      throw MachineFault(cat("bad interpreter opcode ", op));
  }
}

void InterpMachine::step() {
  // 1. Fetch & decode on every active (alive, non-waiting) PE at once.
  std::int64_t alive_count = 0, active_count = 0;
  for (const Pe& pe : pes_) {
    if (!alive(pe)) continue;
    ++alive_count;
    if (!pe.waiting) ++active_count;
  }
  stats_.fetch_cycles += cost_.interp_fetch;
  stats_.busy_pe_cycles += cost_.interp_fetch * active_count;
  stats_.offered_pe_cycles += cost_.interp_fetch * alive_count;

  // Which opcode types were fetched?
  std::set<std::int64_t> present;
  for (const Pe& pe : pes_)
    if (alive(pe) && !pe.waiting)
      present.insert(image_.words[static_cast<std::size_t>(pe.pc)]);

  auto op_cost = [&](std::int64_t op) -> std::int64_t {
    if (op < 1000) {
      ir::Instr in;
      in.op = static_cast<Opcode>(op);
      return cost_.instr_cost(in);
    }
    switch (op) {
      case InterpImage::kJump: return cost_.jump;
      case InterpImage::kJumpF: return cost_.branch;
      case InterpImage::kHalt: return cost_.halt;
      case InterpImage::kWait: return cost_.jump;
      case InterpImage::kSpawn: return cost_.spawn;
      default: return 1;
    }
  };

  auto execute_type = [&](std::int64_t op) {
    std::int64_t c = op_cost(op);
    stats_.execute_cycles += c;
    stats_.offered_pe_cycles += c * alive_count;
    for (std::int64_t pid = 0; pid < config_.nprocs; ++pid) {
      Pe& pe = pes_[static_cast<std::size_t>(pid)];
      if (!alive(pe) || pe.waiting) continue;
      std::size_t w = static_cast<std::size_t>(pe.pc);
      if (image_.words[w] != op) continue;
      stats_.busy_pe_cycles += c;
      exec_one(pid, op, image_.words[w + 1], image_.words[w + 2],
               image_.fwords[w / 3]);
    }
  };

  // 2./3. Serialize over instruction types (§1.1 step 3).
  if (dispatch_ == Dispatch::Naive) {
    // The basic algorithm sweeps every type, present or not.
    for (std::int64_t op = 0; op < kNumDataOpcodes; ++op) {
      stats_.dispatch_cycles += cost_.case_test;
      if (present.count(op)) execute_type(op);
    }
    for (std::int64_t op = 1000; op < 1000 + kNumControlOpcodes; ++op) {
      stats_.dispatch_cycles += cost_.case_test;
      if (present.count(op)) execute_type(op);
    }
  } else {
    // Global-or the opcode presence mask, then touch only present types.
    ++stats_.global_ors;
    stats_.dispatch_cycles += cost_.global_or;
    for (std::int64_t op : present) {
      stats_.dispatch_cycles += cost_.hash_dispatch;
      execute_type(op);
    }
  }

  // 4. "Go to step 1."
  stats_.loop_cycles += cost_.interp_loop;

  // Barrier release: everyone alive is sitting at a kWait.
  bool any_waiting = false, all_waiting = true;
  for (const Pe& pe : pes_) {
    if (!alive(pe)) continue;
    if (pe.waiting) any_waiting = true;
    else all_waiting = false;
  }
  if (any_waiting && all_waiting) {
    for (Pe& pe : pes_) {
      if (!alive(pe)) continue;
      pe.waiting = false;
      pe.pc += 3;
    }
  }
}

void InterpMachine::run() {
  for (;;) {
    bool any_alive = false;
    for (const Pe& pe : pes_)
      if (alive(pe)) any_alive = true;
    if (!any_alive) break;
    step();
    ++stats_.iterations;
    if (stats_.iterations > config_.max_blocks) throw mimd::Timeout();
  }
  stats_.control_cycles = stats_.fetch_cycles + stats_.dispatch_cycles +
                          stats_.execute_cycles + stats_.loop_cycles;
}

}  // namespace msc::interp
