#ifndef MSC_INTERP_MACHINE_HPP
#define MSC_INTERP_MACHINE_HPP

#include <cstdint>
#include <vector>

#include "msc/ir/cost.hpp"
#include "msc/ir/exec.hpp"
#include "msc/ir/graph.hpp"
#include "msc/mimd/machine.hpp"  // RunConfig, Timeout

namespace msc::interp {

/// Dispatch strategy of the §1.1 interpreter loop.
enum class Dispatch : std::uint8_t {
  /// "Basic MIMD Interpreter Algorithm": step 3 repeats for *every*
  /// instruction type, enabled or not.
  Naive,
  /// The [NiT90]/[DiC92] trick: global-or an opcode presence mask first
  /// and only serialize over the types some PE actually fetched.
  GlobalOr,
};

/// The flattened "MIMD instruction set" image placed in every PE's local
/// memory. Each instruction occupies three cells: [opcode, argA, argB].
struct InterpImage {
  /// One interpreter opcode per ir::Opcode, plus control pseudo-ops.
  enum Op : std::int64_t {
    kJump = 1000,   ///< a = target word index
    kJumpF = 1001,  ///< pop cond; a = TRUE word index, b = FALSE word index
    kHalt = 1002,
    kSpawn = 1003,  ///< a = child entry word index (fall through for parent)
    kWait = 1004,   ///< §2.6 barrier
  };

  std::vector<std::int64_t> words;        ///< 3 cells per instruction
  std::vector<std::int64_t> block_entry;  ///< MIMD state id → word index
  std::vector<double> fwords;             ///< float payloads (parallel array)
  std::int64_t entry = 0;

  std::size_t instr_count() const { return words.size() / 3; }
  /// Per-PE memory cost of holding the program (§1.1 overhead 2).
  std::int64_t cells_per_pe() const {
    return static_cast<std::int64_t>(words.size());
  }
};

/// Flatten a MIMD state graph into an interpreter image.
InterpImage assemble(const ir::StateGraph& graph);

struct InterpStats {
  std::int64_t control_cycles = 0;
  std::int64_t fetch_cycles = 0;     ///< overhead 1: fetch/decode
  std::int64_t dispatch_cycles = 0;  ///< serialization over opcode types
  std::int64_t execute_cycles = 0;   ///< useful work broadcasts
  std::int64_t loop_cycles = 0;      ///< overhead 3: interpreter loop jump
  std::int64_t busy_pe_cycles = 0;
  std::int64_t offered_pe_cycles = 0;
  std::int64_t iterations = 0;
  std::int64_t global_ors = 0;
  std::int64_t spawns = 0;
  std::int64_t program_cells_per_pe = 0;  ///< overhead 2: replicated code

  double utilization() const {
    return offered_pe_cycles == 0
               ? 1.0
               : static_cast<double>(busy_pe_cycles) /
                     static_cast<double>(offered_pe_cycles);
  }
};

/// SIMD machine interpretively executing MIMD code (§1.1) — the baseline
/// meta-state conversion is measured against. Functionally equivalent to
/// the MIMD oracle (same instruction semantics, same barrier/spawn rules);
/// the cost model charges the three §1.1 overheads explicitly.
class InterpMachine : public ir::MemoryBus {
 public:
  InterpMachine(const ir::StateGraph& graph, const ir::CostModel& cost,
                const mimd::RunConfig& config, Dispatch dispatch = Dispatch::GlobalOr);

  void poke(std::int64_t proc, std::int64_t addr, Value v);
  Value peek(std::int64_t proc, std::int64_t addr) const;
  void poke_mono(std::int64_t addr, Value v);
  Value peek_mono(std::int64_t addr) const;

  void run();

  const InterpStats& stats() const { return stats_; }
  bool ever_ran(std::int64_t proc) const { return pes_[proc].ever_ran; }

  // MemoryBus:
  Value mono_load(std::int64_t addr) override;
  void mono_store(std::int64_t addr, Value v) override;
  Value route_load(std::int64_t proc, std::int64_t addr) override;
  void route_store(std::int64_t proc, std::int64_t addr, Value v) override;

 private:
  struct Pe {
    std::int64_t pc = -1;  ///< word index; -1 = not in any process
    bool waiting = false;
    bool ever_ran = false;
    ir::SoaLocal local;
    std::vector<Value> stack;
  };

  bool alive(const Pe& pe) const { return pe.pc >= 0; }
  void step();
  void exec_one(std::int64_t pid, std::int64_t op, std::int64_t a,
                std::int64_t b, double f);
  void check_local(std::int64_t proc, std::int64_t addr) const;

  const ir::StateGraph& graph_;
  const ir::CostModel& cost_;
  mimd::RunConfig config_;
  Dispatch dispatch_;
  InterpImage image_;
  std::vector<Pe> pes_;
  std::vector<Value> mono_;
  InterpStats stats_;
};

}  // namespace msc::interp

#endif  // MSC_INTERP_MACHINE_HPP
