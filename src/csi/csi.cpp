#include "msc/csi/csi.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <tuple>

namespace msc::csi {

namespace {

using InstrKey = std::tuple<std::uint8_t, std::uint8_t, std::int64_t, std::uint64_t>;

InstrKey instr_key(const ir::Instr& in) {
  return {static_cast<std::uint8_t>(in.op), static_cast<std::uint8_t>(in.imm.kind),
          in.imm.i, std::bit_cast<std::uint64_t>(in.imm.f)};
}

std::vector<GuardedOp> serialize(const std::vector<Thread>& threads,
                                 std::size_t guard_bits) {
  std::vector<GuardedOp> out;
  for (const Thread& t : threads) {
    DynBitset g(guard_bits);
    g.set(t.key);
    for (const ir::Instr& in : *t.body) out.push_back({g, in});
  }
  return out;
}

/// Cost-weighted majority merge over thread fronts.
std::vector<GuardedOp> greedy(const std::vector<Thread>& threads,
                              const ir::CostModel& cost, std::size_t guard_bits) {
  std::vector<std::size_t> pos(threads.size(), 0);
  std::vector<GuardedOp> out;
  for (;;) {
    // Gather distinct front instructions with their matching thread sets.
    std::map<InstrKey, std::pair<DynBitset, std::size_t>> fronts;  // guard, count
    const ir::Instr* sample[1] = {nullptr};
    std::map<InstrKey, ir::Instr> instr_of;
    bool any = false;
    for (std::size_t t = 0; t < threads.size(); ++t) {
      if (pos[t] >= threads[t].body->size()) continue;
      any = true;
      const ir::Instr& in = (*threads[t].body)[pos[t]];
      auto key = instr_key(in);
      auto it = fronts.find(key);
      if (it == fronts.end()) {
        DynBitset g(guard_bits);
        g.set(threads[t].key);
        fronts.emplace(key, std::make_pair(std::move(g), std::size_t{1}));
        instr_of.emplace(key, in);
      } else {
        it->second.first.set(threads[t].key);
        ++it->second.second;
      }
    }
    (void)sample;
    if (!any) break;
    // Pick the front with the largest saved cost (count-1)·cost; ties go to
    // higher thread count, then map order (deterministic by instr key).
    const InstrKey* best = nullptr;
    std::int64_t best_saved = -1;
    std::size_t best_count = 0;
    for (const auto& [key, gc] : fronts) {
      std::int64_t saved =
          static_cast<std::int64_t>(gc.second - 1) * cost.instr_cost(instr_of.at(key));
      if (saved > best_saved || (saved == best_saved && gc.second > best_count)) {
        best = &key;
        best_saved = saved;
        best_count = gc.second;
      }
    }
    const auto& chosen = fronts.at(*best);
    out.push_back({chosen.first, instr_of.at(*best)});
    for (std::size_t t = 0; t < threads.size(); ++t) {
      if (pos[t] >= threads[t].body->size()) continue;
      if (instr_key((*threads[t].body)[pos[t]]) == *best) ++pos[t];
    }
  }
  return out;
}

/// Optimal (min-cost) merge of two already-guarded sequences: weighted
/// shortest common supersequence by dynamic programming.
std::vector<GuardedOp> merge_pair(const std::vector<GuardedOp>& a,
                                  const std::vector<GuardedOp>& b,
                                  const ir::CostModel& cost) {
  const std::size_t n = a.size(), m = b.size();
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> dp((n + 1) * (m + 1), 0);
  auto at = [&](std::size_t i, std::size_t j) -> std::int64_t& {
    return dp[i * (m + 1) + j];
  };
  for (std::size_t i = n + 1; i-- > 0;) {
    for (std::size_t j = m + 1; j-- > 0;) {
      if (i == n && j == m) continue;
      std::int64_t best = kInf;
      if (i < n) best = std::min(best, cost.instr_cost(a[i].instr) + at(i + 1, j));
      if (j < m) best = std::min(best, cost.instr_cost(b[j].instr) + at(i, j + 1));
      if (i < n && j < m && a[i].instr == b[j].instr)
        best = std::min(best, cost.instr_cost(a[i].instr) + at(i + 1, j + 1));
      at(i, j) = best;
    }
  }
  std::vector<GuardedOp> out;
  std::size_t i = 0, j = 0;
  while (i < n || j < m) {
    // Prefer the shared emission when it is on an optimal path.
    if (i < n && j < m && a[i].instr == b[j].instr &&
        at(i, j) == cost.instr_cost(a[i].instr) + at(i + 1, j + 1)) {
      out.push_back({a[i].guard | b[j].guard, a[i].instr});
      ++i;
      ++j;
      continue;
    }
    if (i < n && at(i, j) == cost.instr_cost(a[i].instr) + at(i + 1, j)) {
      out.push_back(a[i]);
      ++i;
      continue;
    }
    out.push_back(b[j]);
    ++j;
  }
  return out;
}

std::vector<GuardedOp> progressive_in_order(const std::vector<const Thread*>& order,
                                            const ir::CostModel& cost,
                                            std::size_t guard_bits) {
  std::vector<GuardedOp> acc;
  bool first = true;
  for (const Thread* t : order) {
    std::vector<GuardedOp> cur;
    DynBitset g(guard_bits);
    g.set(t->key);
    for (const ir::Instr& in : *t->body) cur.push_back({g, in});
    if (first) {
      acc = std::move(cur);
      first = false;
    } else {
      acc = merge_pair(acc, cur, cost);
    }
  }
  return acc;
}

/// Progressive pairwise merging, exploring several thread orders — our
/// lightweight analogue of the paper's permutation search (§3.1): merge
/// order changes which sharings the pairwise-optimal DP can see.
std::vector<GuardedOp> progressive(const std::vector<Thread>& threads,
                                   const ir::CostModel& cost,
                                   std::size_t guard_bits) {
  std::vector<const Thread*> order;
  for (const Thread& t : threads) order.push_back(&t);

  auto longest_first = order;
  std::sort(longest_first.begin(), longest_first.end(),
            [](const Thread* a, const Thread* b) {
              if (a->body->size() != b->body->size())
                return a->body->size() > b->body->size();
              return a->key < b->key;
            });
  auto reversed = order;
  std::reverse(reversed.begin(), reversed.end());

  std::vector<GuardedOp> best;
  std::int64_t best_cost = -1;
  for (const auto& o : {order, longest_first, reversed}) {
    auto sched = progressive_in_order(o, cost, guard_bits);
    std::int64_t c = schedule_cost(sched, cost);
    if (best_cost < 0 || c < best_cost) {
      best_cost = c;
      best = std::move(sched);
    }
  }
  return best;
}

}  // namespace

std::int64_t schedule_cost(const std::vector<GuardedOp>& schedule,
                           const ir::CostModel& cost) {
  std::int64_t total = 0;
  for (const GuardedOp& op : schedule) total += cost.instr_cost(op.instr);
  return total;
}

bool schedule_valid(const std::vector<GuardedOp>& schedule,
                    const std::vector<Thread>& threads) {
  for (const Thread& t : threads) {
    std::size_t pos = 0;
    for (const GuardedOp& op : schedule) {
      if (!op.guard.test(t.key)) continue;
      if (pos >= t.body->size()) return false;
      if (!((*t.body)[pos] == op.instr)) return false;
      ++pos;
    }
    if (pos != t.body->size()) return false;
  }
  // No op may carry a guard bit that is not one of the thread keys.
  DynBitset keys;
  for (const Thread& t : threads) keys.set(t.key);
  for (const GuardedOp& op : schedule)
    if (!op.guard.is_subset_of(keys)) return false;
  return true;
}

CsiResult induce(const std::vector<Thread>& threads, const ir::CostModel& cost,
                 const CsiOptions& options) {
  CsiResult res;
  std::size_t bits = options.guard_bits;
  for (const Thread& t : threads) bits = std::max(bits, t.key + 1);

  res.serialized_cost = 0;
  for (const Thread& t : threads)
    for (const ir::Instr& in : *t.body) res.serialized_cost += cost.instr_cost(in);

  // Class lower bound: each distinct instruction must appear at least
  // max-per-thread times; also no schedule is shorter than its longest
  // thread (§3.1's "theoretical lower bound on execution time").
  std::map<InstrKey, std::pair<std::int64_t, ir::Instr>> max_count;
  std::int64_t longest_thread = 0;
  for (const Thread& t : threads) {
    std::map<InstrKey, std::int64_t> local;
    std::int64_t tc = 0;
    for (const ir::Instr& in : *t.body) {
      ++local[instr_key(in)];
      tc += cost.instr_cost(in);
    }
    longest_thread = std::max(longest_thread, tc);
    for (const auto& [key, count] : local) {
      auto it = max_count.find(key);
      if (it == max_count.end()) {
        // Recover an instruction for costing purposes.
        for (const ir::Instr& in : *t.body)
          if (instr_key(in) == key) {
            max_count.emplace(key, std::make_pair(count, in));
            break;
          }
      } else {
        it->second.first = std::max(it->second.first, count);
      }
    }
  }
  std::int64_t class_bound = 0;
  for (const auto& [key, cc] : max_count)
    class_bound += cc.first * cost.instr_cost(cc.second);
  res.lower_bound = std::max(class_bound, longest_thread);

  switch (options.algorithm) {
    case Algorithm::Serialize:
      res.schedule = serialize(threads, bits);
      break;
    case Algorithm::Greedy:
      res.schedule = greedy(threads, cost, bits);
      break;
    case Algorithm::Progressive:
      res.schedule = progressive(threads, cost, bits);
      break;
    case Algorithm::Best: {
      auto g = greedy(threads, cost, bits);
      auto p = progressive(threads, cost, bits);
      res.schedule = schedule_cost(g, cost) <= schedule_cost(p, cost)
                         ? std::move(g)
                         : std::move(p);
      break;
    }
  }
  res.induced_cost = schedule_cost(res.schedule, cost);
  for (const GuardedOp& op : res.schedule)
    if (op.guard.count() >= 2) ++res.shared_ops;
  return res;
}

}  // namespace msc::csi
