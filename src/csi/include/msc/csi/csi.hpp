#ifndef MSC_CSI_CSI_HPP
#define MSC_CSI_CSI_HPP

#include <cstdint>
#include <vector>

#include "msc/ir/cost.hpp"
#include "msc/ir/instr.hpp"
#include "msc/support/bitset.hpp"

namespace msc::csi {

/// One SIMD-scheduled operation: the instruction plus the set of threads
/// (MIMD states) whose PEs execute it.
struct GuardedOp {
  DynBitset guard;
  ir::Instr instr;
};

/// A thread to schedule: the instruction body of one MIMD state merged
/// into a meta state (§3.1: "multiple instruction sequences that are
/// supposed to execute simultaneously").
struct Thread {
  std::size_t key;  ///< MIMD state id (guard bit)
  const std::vector<ir::Instr>* body;
};

enum class Algorithm : std::uint8_t {
  /// No induction: threads serialized one after another (the naive SIMD
  /// coding CSI improves upon).
  Serialize,
  /// Cost-weighted majority merge: repeatedly emit the instruction shared
  /// by the most thread fronts.
  Greedy,
  /// Progressive pairwise optimal merges (dynamic programming over thread
  /// pairs) — our stand-in for the paper's permutation-in-range search.
  Progressive,
  /// Run Greedy and Progressive, keep the cheaper schedule (default).
  Best,
};

struct CsiOptions {
  Algorithm algorithm = Algorithm::Best;
  /// Guard-bitset width (number of MIMD states in the graph).
  std::size_t guard_bits = 0;
};

struct CsiResult {
  std::vector<GuardedOp> schedule;
  std::int64_t serialized_cost = 0;  ///< cost with no sharing at all
  std::int64_t induced_cost = 0;     ///< cost of the returned schedule
  std::int64_t lower_bound = 0;      ///< class-count bound (can't do better)
  std::size_t shared_ops = 0;        ///< ops executed by ≥2 threads
};

/// Common subexpression induction for one meta state: produce a single
/// SIMD instruction schedule in which identical operations from different
/// threads are factored into one broadcast. Each thread's projection of
/// the schedule (ops whose guard contains the thread key) is exactly its
/// original body, in order — threads have no cross dependencies, so any
/// interleaving is legal; only intra-thread order is fixed.
CsiResult induce(const std::vector<Thread>& threads, const ir::CostModel& cost,
                 const CsiOptions& options);

/// Test helper: check that `schedule` projects to each thread's body.
bool schedule_valid(const std::vector<GuardedOp>& schedule,
                    const std::vector<Thread>& threads);

/// Cost of a schedule: each op is one SIMD broadcast paid once.
std::int64_t schedule_cost(const std::vector<GuardedOp>& schedule,
                           const ir::CostModel& cost);

}  // namespace msc::csi

#endif  // MSC_CSI_CSI_HPP
