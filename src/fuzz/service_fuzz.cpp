// Wire-format mutator for the mscd protocol (mscfuzz --target service).
// Coverage-guided like the differential fuzzer: frames whose handling
// lights up novel converter/engine features join the mutation pool, so
// the fuzzer walks from the seed requests toward the protocol's edges
// instead of spinning on parse errors.
#include "msc/fuzz/service_fuzz.hpp"

#include <chrono>
#include <fstream>

#include "msc/fuzz/fuzz.hpp"
#include "msc/service/protocol.hpp"
#include "msc/service/service.hpp"
#include "msc/support/json.hpp"
#include "msc/support/rng.hpp"
#include "msc/support/str.hpp"

namespace msc::fuzz {

namespace {

/// Seed frames: one well-formed request per op, plus near-misses that
/// sit on validation boundaries. Mutations start from these.
const char* kSeedFrames[] = {
    "{\"op\": \"stats\"}",
    "{\"op\": \"stats\", \"metrics\": true}",
    "{\"op\": \"compile\", \"id\": 1, \"source\": \"poly int x;\\nint "
    "main() { return x + procid(); }\\n\"}",
    "{\"op\": \"compile\", \"tenant\": \"t0\", \"source\": \"poly int "
    "x;\\nint main() { int i; i = 0; while (i < x) { i = i + 1; wait; } "
    "return i; }\\n\", \"max_meta_states\": 4}",
    "{\"op\": \"run\", \"source\": \"poly int x;\\nint main() { return x * "
    "2; }\\n\", \"nprocs\": 4, \"seed\": 2, \"profile\": true}",
    "{\"op\": \"run\", \"source\": \"int main() { return 1; }\", \"engine\": "
    "\"reference\", \"max_blocks\": 100}",
    "{\"op\": \"coschedule\", \"programs\": [\"reduce@8\", \"scan@8\"], "
    "\"policy\": \"rr\", \"quantum\": 2}",
    "{\"op\": \"metrics\"}",
    "{\"op\": \"metrics\", \"tenant\": \"t1\", \"trace\": true}",
    "{\"op\": \"slowlog\", \"id\": 9}",
    "{\"op\": \"run\", \"source\": \"poly int x;\\nint main() { return x * "
    "2; }\\n\", \"nprocs\": 4, \"trace\": true}",
    "{\"op\": \"stats\", \"trace\": false}",
    "{\"op\": \"shutdown\", \"id\": \"bye\"}",
};

std::string mutate_frame(const std::string& base, Rng& rng) {
  std::string s = base;
  const int kind = static_cast<int>(rng.next_below(9));
  switch (kind) {
    case 8: {  // toggle the trace flag (observability surface, §15)
      const std::size_t at = s.find("\"trace\": true");
      const std::size_t af = s.find("\"trace\": false");
      if (at != std::string::npos)
        s.replace(at, 13, "\"trace\": false");
      else if (af != std::string::npos)
        s.replace(af, 14, "\"trace\": true");
      else if (!s.empty() && s.back() == '}')
        s.insert(s.size() - 1, ", \"trace\": true");
      break;
    }
    case 0: {  // flip a byte
      if (s.empty()) return "{";
      s[rng.next_below(s.size())] =
          static_cast<char>(rng.next_range(32, 126));
      break;
    }
    case 1: {  // truncate
      if (!s.empty()) s.resize(rng.next_below(s.size()));
      break;
    }
    case 2: {  // delete a span
      if (s.size() > 2) {
        const std::size_t at = rng.next_below(s.size() - 1);
        const std::size_t len = 1 + rng.next_below(s.size() - at);
        s.erase(at, len);
      }
      break;
    }
    case 3: {  // insert structural noise
      static const char* kNoise[] = {"{", "}", "[", "]", "\"", ",", ":",
                                     "\\u0000", "null", "1e309", "-0"};
      s.insert(rng.next_below(s.size() + 1),
               kNoise[rng.next_below(sizeof(kNoise) / sizeof(kNoise[0]))]);
      break;
    }
    case 4: {  // splice two frames at random cut points
      const std::string& other =
          kSeedFrames[rng.next_below(sizeof(kSeedFrames) /
                                     sizeof(kSeedFrames[0]))];
      s = s.substr(0, rng.next_below(s.size() + 1)) +
          other.substr(rng.next_below(other.size() + 1));
      break;
    }
    case 5: {  // wrap in nesting (probes the depth limit)
      const int depth = static_cast<int>(rng.next_range(1, 96));
      std::string bomb = "{\"op\": ";
      for (int i = 0; i < depth; ++i) bomb += "[";
      bomb += "1";
      for (int i = 0; i < depth; ++i) bomb += "]";
      bomb += "}";
      s = bomb;
      break;
    }
    case 6: {  // inflate (probes the frame limit)
      s.insert(rng.next_below(s.size() + 1),
               std::string(rng.next_below(4096) + 1,
                           static_cast<char>(rng.next_range(32, 126))));
      break;
    }
    default: {  // duplicate a span
      if (!s.empty()) {
        const std::size_t at = rng.next_below(s.size());
        const std::size_t len = 1 + rng.next_below(s.size() - at);
        s.insert(at, s.substr(at, len));
      }
      break;
    }
  }
  // The reqlog format is one frame per line; a mutated newline would
  // silently split into two frames on replay.
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

/// Check one response against the protocol contract. Returns "" when it
/// holds, else the violation.
std::string check_response(const std::string& frame,
                           const std::string& response,
                           std::size_t max_frame_bytes) {
  if (response.find('\n') != std::string::npos)
    return "response contains an embedded newline";
  json::Value doc;
  try {
    doc = json::parse(response);
  } catch (const json::ParseError& e) {
    return cat("response is not valid JSON: ", e.what());
  }
  if (!doc.is_object()) return "response is not a JSON object";
  const json::Value* schema = doc.find("schema");
  if (!schema || !schema->is_number() || schema->as_int() != 1)
    return "response lacks \"schema\": 1";
  const json::Value* ok = doc.find("ok");
  if (!ok || ok->kind != json::Value::Kind::Bool)
    return "response lacks a boolean \"ok\"";
  if (!ok->b) {
    const json::Value* err = doc.find("error");
    if (!err || !err->is_object()) return "error response lacks \"error\"";
    const json::Value* errkind = err->find("kind");
    if (!errkind || !errkind->is_string())
      return "error response lacks a \"kind\"";
    try {
      service::parse_error_kind(errkind->str);
    } catch (const std::invalid_argument&) {
      return cat("unknown error kind '", errkind->str, "'");
    }
    if (frame.size() > max_frame_bytes &&
        errkind->str != "frame-too-large")
      return cat("oversized frame answered '", errkind->str,
                 "' instead of 'frame-too-large'");
  } else if (frame.size() > max_frame_bytes) {
    return "oversized frame was accepted";
  }
  // A "trace" member, when attached, is a JSON-escaped string carrying a
  // RequestTrace document — it must round-trip and name its request.
  if (const json::Value* trace = doc.find("trace")) {
    if (!trace->is_string()) return "\"trace\" member is not a string";
    json::Value rt;
    try {
      rt = json::parse(trace->as_string());
    } catch (const json::ParseError& e) {
      return cat("\"trace\" member is not embedded JSON: ", e.what());
    }
    if (!rt.is_object() || !rt.find("request_id") ||
        !rt.find("phase_micros"))
      return "\"trace\" document lacks request_id/phase_micros";
  }
  return "";
}

/// Run a frame sequence against a fresh service; returns the violation
/// ("" = clean). The service is rebuilt per call so results are a pure
/// function of the sequence — exactly what a reqlog replay needs.
std::string run_sequence(const std::vector<std::string>& frames,
                         std::size_t max_frame_bytes) {
  service::ServiceOptions opts;
  opts.limits.max_frame_bytes = max_frame_bytes;
  service::Service svc(opts);
  for (const std::string& frame : frames) {
    std::string response;
    try {
      response = svc.handle_line(frame);
    } catch (const std::exception& e) {
      return cat("handle_line threw: ", e.what());
    } catch (...) {
      return "handle_line threw a non-std exception";
    }
    const std::string violation =
        check_response(frame, response, max_frame_bytes);
    if (!violation.empty()) return violation;
  }
  return "";
}

/// Greedy shrink: drop frames (a finding usually needs one), then carve
/// chunks out of the surviving frames while the violation reproduces.
std::vector<std::string> shrink_sequence(std::vector<std::string> frames,
                                         std::size_t max_frame_bytes) {
  // Phase 1: minimal sub-sequence.
  for (std::size_t i = frames.size(); i-- > 0;) {
    std::vector<std::string> without = frames;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    if (!run_sequence(without, max_frame_bytes).empty()) frames = without;
  }
  // Phase 2: per-frame chunk deletion, halving chunk size like the
  // source shrinker.
  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    std::size_t chunk = frames[fi].size() / 2;
    if (chunk == 0) chunk = 1;
    for (;; chunk /= 2) {
      bool progress = true;
      while (progress && frames[fi].size() > chunk) {
        progress = false;
        for (std::size_t at = 0; at + chunk <= frames[fi].size();
             at += chunk) {
          std::vector<std::string> trial = frames;
          trial[fi].erase(at, chunk);
          if (!run_sequence(trial, max_frame_bytes).empty()) {
            frames = std::move(trial);
            progress = true;
            break;
          }
        }
      }
      if (chunk <= 1) break;
    }
  }
  return frames;
}

}  // namespace

bool replay_request_log(const std::vector<std::string>& frames,
                        std::size_t max_frame_bytes, std::string* detail) {
  const std::string violation = run_sequence(frames, max_frame_bytes);
  if (detail) *detail = violation;
  return violation.empty();
}

ServiceFuzzResult fuzz_service(const ServiceFuzzOptions& options) {
  ServiceFuzzResult result;
  Rng rng(options.seed == 0 ? 1 : options.seed);
  FuzzCoverage coverage;
  ScopedCoverage scope(&coverage);

  std::vector<std::string> pool(
      kSeedFrames, kSeedFrames + sizeof(kSeedFrames) / sizeof(kSeedFrames[0]));

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.time_budget_seconds));

  while (static_cast<int>(result.findings.size()) < options.max_findings) {
    if (options.max_iterations > 0 &&
        result.iterations >= options.max_iterations)
      break;
    if (options.max_iterations <= 0 &&
        std::chrono::steady_clock::now() >= deadline)
      break;
    ++result.iterations;

    // Build a candidate sequence: mostly mutants, sometimes originals so
    // stateful interactions (cache hits, quota strikes, shutdown) occur.
    std::vector<std::string> frames;
    for (int i = 0; i < options.frames_per_candidate; ++i) {
      const std::string& base = pool[rng.next_below(pool.size())];
      frames.push_back(rng.chance(1, 4) ? base : mutate_frame(base, rng));
    }

    coverage.begin_candidate();
    const std::string violation =
        run_sequence(frames, options.max_frame_bytes);
    if (coverage.merge() > 0 && pool.size() < 512)
      for (const std::string& f : frames) pool.push_back(f);

    if (!violation.empty()) {
      ServiceFinding finding;
      finding.frames = options.shrink
                           ? shrink_sequence(frames, options.max_frame_bytes)
                           : frames;
      finding.detail = run_sequence(finding.frames, options.max_frame_bytes);
      if (finding.detail.empty()) finding.detail = violation;
      if (!options.out_dir.empty()) {
        const std::string path =
            cat(options.out_dir, "/finding_", result.findings.size(),
                ".reqlog");
        std::ofstream out(path, std::ios::binary);
        for (const std::string& f : finding.frames) out << f << "\n";
      }
      result.findings.push_back(std::move(finding));
    }
  }

  result.corpus_size = pool.size();
  result.total_features = coverage.total_features();
  return result;
}

}  // namespace msc::fuzz
