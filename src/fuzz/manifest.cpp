// Repro manifests: a tiny flat-JSON schema shared by the fuzzer's output,
// `mscfuzz --replay`, and corpus_regression_test. Hand-rolled reader and
// writer because the schema is one flat object and the toolchain carries
// no JSON dependency.
#include "msc/fuzz/manifest.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "msc/simd/machine.hpp"
#include "msc/support/str.hpp"

namespace msc::fuzz {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Minimal parser for one flat JSON object with string / integer /
/// boolean values. Unknown keys are ignored (forward compatibility).
class FlatParser {
 public:
  explicit FlatParser(const std::string& text) : text_(text) {}

  std::map<std::string, std::string> parse() {
    std::map<std::string, std::string> fields;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return fields;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      fields[key] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return fields;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(
        cat("manifest parse error at offset ", static_cast<std::int64_t>(pos_),
            ": ", what));
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(cat("expected '", std::string(1, c), "'"));
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }
  std::string parse_value() {
    const char c = peek();
    if (c == '"') return parse_string();
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])))
      out += text_[pos_++];
    if (out.empty()) fail("expected a value");
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::int64_t to_int(const std::map<std::string, std::string>& fields,
                    const std::string& key, std::int64_t fallback) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  return std::stoll(it->second);
}

bool to_bool(const std::map<std::string, std::string>& fields,
             const std::string& key, bool fallback) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  throw std::runtime_error(cat("manifest field '", key, "' is not a bool"));
}

std::string to_str(const std::map<std::string, std::string>& fields,
                   const std::string& key, const std::string& fallback) {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

}  // namespace

RunSpec Manifest::spec() const {
  RunSpec s;
  if (!pipeline.empty()) {
    s.pipeline.clear();
    for (const std::string& name : split(pipeline, ','))
      if (!name.empty()) s.pipeline.push_back(name);
  } else {
    // Legacy manifests describe the cell as booleans; rebuild the pass
    // pipeline they meant.
    s.pipeline.clear();
    if (compress) s.pipeline.push_back("compress");
    if (time_split) s.pipeline.push_back("time-split");
    s.pipeline.push_back("convert");
    if (subsume) s.pipeline.push_back("subsume");
    s.pipeline.push_back("straighten");
  }
  s.barrier_mode = prune ? core::BarrierMode::PaperPrune
                         : core::BarrierMode::TrackOccupancy;
  s.threads = threads;
  if (engine == "fast") {
    s.engine = mimd::SimdEngine::Fast;
  } else if (engine == "reference") {
    s.engine = mimd::SimdEngine::Reference;
  } else if (engine == "codegen") {
    s.engine = mimd::SimdEngine::Codegen;
  } else {
    throw std::runtime_error(cat("manifest: unknown engine '", engine, "'"));
  }
  return s;
}

EvalConfig Manifest::eval_config() const {
  EvalConfig cfg;
  cfg.nprocs = nprocs;
  cfg.initial_active = initial_active;
  cfg.input_seed = input_seed;
  cfg.reuse_halted_pes = reuse_halted_pes;
  return cfg;
}

FindingKind Manifest::finding_kind() const {
  if (kind == "divergence") return FindingKind::Divergence;
  if (kind == "stats-mismatch") return FindingKind::StatsMismatch;
  if (kind == "crash") return FindingKind::Crash;
  if (kind == "compile-error") return FindingKind::CompileError;
  if (kind == "unsound-accept") return FindingKind::UnsoundAccept;
  throw std::runtime_error(
      cat("manifest kind '", kind, "' is not a finding kind"));
}

std::string to_json(const Manifest& m) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": " << m.schema << ",\n";
  os << "  \"kind\": \"" << escape(m.kind) << "\",\n";
  os << "  \"source_file\": \"" << escape(m.source_file) << "\",\n";
  os << "  \"expect\": \"" << escape(m.expect) << "\",\n";
  os << "  \"nprocs\": " << m.nprocs << ",\n";
  os << "  \"initial_active\": " << m.initial_active << ",\n";
  os << "  \"input_seed\": " << m.input_seed << ",\n";
  os << "  \"reuse_halted_pes\": " << (m.reuse_halted_pes ? "true" : "false")
     << ",\n";
  os << "  \"pipeline\": \"" << escape(m.pipeline) << "\",\n";
  os << "  \"prune\": " << (m.prune ? "true" : "false") << ",\n";
  os << "  \"threads\": " << m.threads << ",\n";
  os << "  \"engine\": \"" << escape(m.engine) << "\",\n";
  os << "  \"note\": \"" << escape(m.note) << "\"\n";
  os << "}\n";
  return os.str();
}

Manifest parse_manifest(const std::string& json) {
  const auto fields = FlatParser(json).parse();
  Manifest m;
  m.schema = static_cast<int>(to_int(fields, "schema", 1));
  if (m.schema != 1)
    throw std::runtime_error(
        cat("unsupported manifest schema ", std::int64_t{m.schema}));
  m.kind = to_str(fields, "kind", m.kind);
  m.source_file = to_str(fields, "source_file", m.source_file);
  m.expect = to_str(fields, "expect", m.expect);
  m.nprocs = to_int(fields, "nprocs", m.nprocs);
  m.initial_active = to_int(fields, "initial_active", m.initial_active);
  m.input_seed =
      static_cast<std::uint64_t>(to_int(fields, "input_seed",
                                        static_cast<std::int64_t>(m.input_seed)));
  m.reuse_halted_pes = to_bool(fields, "reuse_halted_pes", m.reuse_halted_pes);
  m.pipeline = to_str(fields, "pipeline", m.pipeline);
  m.compress = to_bool(fields, "compress", m.compress);
  m.subsume = to_bool(fields, "subsume", m.subsume);
  m.prune = to_bool(fields, "prune", m.prune);
  m.time_split = to_bool(fields, "time_split", m.time_split);
  m.threads = static_cast<unsigned>(to_int(fields, "threads", m.threads));
  m.engine = to_str(fields, "engine", m.engine);
  m.note = to_str(fields, "note", m.note);
  if (m.source_file.empty())
    throw std::runtime_error("manifest is missing source_file");
  return m;
}

Manifest load_manifest(const std::string& path, std::string* source_out) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(cat("cannot open manifest: ", path));
  std::ostringstream buf;
  buf << in.rdbuf();
  Manifest m = parse_manifest(buf.str());
  if (source_out) {
    const std::filesystem::path src =
        std::filesystem::path(path).parent_path() / m.source_file;
    std::ifstream sin(src);
    if (!sin)
      throw std::runtime_error(cat("cannot open source: ", src.string()));
    std::ostringstream sbuf;
    sbuf << sin.rdbuf();
    *source_out = sbuf.str();
  }
  return m;
}

Manifest manifest_for(const Finding& finding, const EvalConfig& cfg,
                      const std::string& source_file) {
  Manifest m;
  m.kind = to_string(finding.kind);
  m.source_file = source_file;
  m.expect = "match";
  m.nprocs = cfg.nprocs;
  m.initial_active = cfg.initial_active;
  m.input_seed = cfg.input_seed;
  m.reuse_halted_pes = cfg.reuse_halted_pes;
  const RunSpec& s = finding.spec;
  m.pipeline = join(s.pipeline, ",");
  m.prune = s.barrier_mode == core::BarrierMode::PaperPrune;
  m.threads = s.threads;
  m.engine = simd::engine_name(s.engine);
  // First line of the detail is enough context for a human reader.
  const std::size_t nl = finding.detail.find('\n');
  m.note = nl == std::string::npos ? finding.detail
                                   : finding.detail.substr(0, nl);
  return m;
}

}  // namespace msc::fuzz
