// Differential evaluation and the coverage-guided fuzzing loop.
#include "msc/fuzz/fuzz.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/fuzz/manifest.hpp"
#include "msc/pass/pass.hpp"
#include "msc/support/diag.hpp"
#include "msc/support/rng.hpp"
#include "msc/support/str.hpp"

namespace msc::fuzz {
namespace {

struct SimdOutcome {
  enum class Kind : std::uint8_t { Ok, Fault, Timeout } kind = Kind::Ok;
  driver::Observed obs;
  simd::SimdStats stats;
  std::vector<std::int64_t> visits;
  std::string fault;
};

Finding make_finding(FindingKind kind, const RunSpec& spec,
                     const std::string& source, std::string detail) {
  Finding f;
  f.kind = kind;
  f.spec = spec;
  f.source = source;
  f.detail = std::move(detail);
  return f;
}

core::ConvertOptions convert_options(const RunSpec& spec,
                                     const EvalConfig& cfg) {
  // Stage selection (compress/time-split/subsume/straighten) lives in
  // spec.pipeline; only the engine-level knobs are set here.
  core::ConvertOptions copts;
  copts.barrier_mode = spec.barrier_mode;
  copts.threads = spec.threads;
  copts.max_meta_states = cfg.max_meta_states;
  return copts;
}

}  // namespace

EvalResult evaluate(const std::string& source, const EvalConfig& cfg,
                    const std::vector<RunSpec>& matrix) {
  EvalResult res;
  auto fail = [&](FindingKind kind, const RunSpec& spec, std::string detail) {
    res.finding = make_finding(kind, spec, source, std::move(detail));
    return res;
  };

  driver::Compiled compiled;
  try {
    compiled = driver::compile(source);
  } catch (const CompileError& e) {
    return fail(FindingKind::CompileError, RunSpec{}, e.what());
  } catch (const std::exception& e) {
    return fail(FindingKind::Crash, RunSpec{},
                cat("compile crashed: ", e.what()));
  }

  mimd::RunConfig base_config;
  base_config.nprocs = cfg.nprocs;
  base_config.initial_active = cfg.initial_active;
  base_config.reuse_halted_pes = cfg.reuse_halted_pes;

  bool oracle_fault = false;
  std::string oracle_fault_msg;
  driver::Observed oracle;
  mimd::MimdStats ostats;
  try {
    oracle = driver::run_oracle(compiled, base_config, cfg.input_seed, &ostats);
  } catch (const mimd::Timeout&) {
    // Generated programs halt by construction, but a replayed external
    // source may not: not a converter bug, just unusable as an oracle.
    res.skipped = true;
    return res;
  } catch (const ir::MachineFault& e) {
    oracle_fault = true;
    oracle_fault_msg = e.what();
  } catch (const std::exception& e) {
    return fail(FindingKind::Crash, RunSpec{},
                cat("oracle crashed: ", e.what()));
  }

  // The SIMD machine counts meta transitions against max_blocks; a sound
  // automaton finishes within a small multiple of the oracle's block
  // count, so a corrupted one that livelocks trips this budget quickly
  // instead of grinding toward the 4M default.
  const std::int64_t simd_block_budget =
      oracle_fault ? 1'000'000 : ostats.blocks_executed * 8 + 4096;
  const bool unordered = compiled.graph.has_spawn();
  const bool single_barrier = compiled.graph.barrier_states().count() <= 1;
  const ir::CostModel cost;

  // One conversion per distinct convert_key; nullopt records an explosion.
  std::map<std::string, std::optional<core::ConvertResult>> conversions;
  // Thread-width determinism: key-without-threads → (first key, dump).
  std::map<std::string, std::pair<std::string, std::string>> dumps;
  // Engine agreement: convert_key → (spec, outcome) of the first engine.
  std::map<std::string, std::pair<RunSpec, SimdOutcome>> engine_runs;

  for (const RunSpec& spec : matrix) {
    // PaperPrune is only sound with at most one barrier state and a
    // static process population; the converter must refuse everything
    // else with a CompileError (promoted from a fuzzer skip — an accept
    // here is itself a finding).
    if (spec.barrier_mode == core::BarrierMode::PaperPrune &&
        (spec.has("compress") || !single_barrier || unordered)) {
      try {
        core::ConvertResult conv = pass::run_conversion_pipeline(
            compiled.graph, cost, spec.pipeline, convert_options(spec, cfg));
        return fail(FindingKind::UnsoundAccept, spec,
                    cat("converter accepted an unsound PaperPrune "
                        "combination (", conv.automaton.num_states(),
                        " states); expected a CompileError"));
      } catch (const CompileError&) {
        // expected: rejected at compile time
      } catch (const core::ExplosionError&) {
        // exploded before reaching the guard is impossible (the guard runs
        // first), but a pipeline variant may bound states differently.
      } catch (const std::exception& e) {
        return fail(FindingKind::Crash, spec,
                    cat("conversion crashed: ", e.what()));
      }
      continue;
    }

    const std::string key = spec.convert_key();
    auto it = conversions.find(key);
    if (it == conversions.end()) {
      try {
        core::ConvertResult conv = pass::run_conversion_pipeline(
            compiled.graph, cost, spec.pipeline, convert_options(spec, cfg));
        if (cfg.corrupt_conversion) cfg.corrupt_conversion(conv);
        it = conversions.emplace(key, std::move(conv)).first;
      } catch (const core::ExplosionError&) {
        it = conversions.emplace(key, std::nullopt).first;
      } catch (const std::exception& e) {
        return fail(FindingKind::Crash, spec,
                    cat("conversion crashed: ", e.what()));
      }
      if (it->second) {
        // Any thread width must produce a bit-identical automaton.
        RunSpec serial = spec;
        serial.threads = 1;
        const std::string width_key = serial.convert_key();
        const std::string dump = it->second->automaton.dump();
        auto [dit, fresh] = dumps.emplace(width_key, std::make_pair(key, dump));
        if (!fresh && dit->second.second != dump)
          return fail(FindingKind::StatsMismatch, spec,
                      cat("automaton differs between conversions ",
                          dit->second.first, " and ", key,
                          " (thread-width nondeterminism)"));
      }
    }
    if (!it->second) continue;  // exploded under this mode: nothing to run

    mimd::RunConfig rc = base_config;
    rc.engine = spec.engine;
    rc.max_blocks = simd_block_budget;
    SimdOutcome out;
    try {
      out.obs = driver::run_simd(compiled, *it->second, rc, cfg.input_seed,
                                 cost, {}, &out.stats, &out.visits);
    } catch (const mimd::Timeout&) {
      out.kind = SimdOutcome::Kind::Timeout;
    } catch (const ir::MachineFault& e) {
      out.kind = SimdOutcome::Kind::Fault;
      out.fault = e.what();
    } catch (const std::exception& e) {
      return fail(FindingKind::Crash, spec, cat("simd crashed: ", e.what()));
    }

    if (oracle_fault) {
      // The oracle faulted (e.g. spawn exhaustion); SIMD must fault too.
      if (out.kind != SimdOutcome::Kind::Fault)
        return fail(FindingKind::Divergence, spec,
                    cat("oracle faulted (", oracle_fault_msg, ") but ",
                        spec.label(), " ",
                        out.kind == SimdOutcome::Kind::Timeout
                            ? "timed out"
                            : "completed normally"));
    } else {
      switch (out.kind) {
        case SimdOutcome::Kind::Fault:
          return fail(FindingKind::Divergence, spec,
                      cat(spec.label(), " faulted: ", out.fault));
        case SimdOutcome::Kind::Timeout:
          return fail(FindingKind::Divergence, spec,
                      cat(spec.label(), " exceeded ", simd_block_budget,
                          " meta transitions (oracle ran ",
                          ostats.blocks_executed, " blocks)"));
        case SimdOutcome::Kind::Ok: {
          const bool match = unordered ? oracle.equivalent_unordered(out.obs)
                                       : oracle == out.obs;
          if (!match)
            return fail(FindingKind::Divergence, spec,
                        cat(spec.label(), " diverged from the oracle\n",
                            "--- oracle ---\n", oracle.to_string(),
                            "--- simd ---\n", out.obs.to_string()));
          break;
        }
      }
    }

    // Both engines over one conversion must agree bit-for-bit on stats
    // and per-meta-state visits (the PR2 contract).
    auto [eit, first] = engine_runs.emplace(key, std::make_pair(spec, out));
    if (!first && eit->second.first.engine != spec.engine) {
      const SimdOutcome& other = eit->second.second;
      if (other.kind != out.kind || other.fault != out.fault ||
          !(other.stats == out.stats) || other.visits != out.visits)
        return fail(FindingKind::StatsMismatch, spec,
                    cat(eit->second.first.label(), " and ", spec.label(),
                        " disagree on stats/visits over one conversion"));
    }
  }
  return res;
}

bool reproduces(const std::string& source, const EvalConfig& cfg,
                const RunSpec& spec, FindingKind kind) {
  std::vector<RunSpec> mini{spec};
  if (kind == FindingKind::StatsMismatch) {
    // Pair checks need a partner cell: the other engine, and (for
    // thread-width nondeterminism) the serial conversion.
    RunSpec other = spec;
    other.engine = spec.engine == mimd::SimdEngine::Fast
                       ? mimd::SimdEngine::Reference
                       : mimd::SimdEngine::Fast;
    if (spec.threads != 1) {
      RunSpec serial = spec;
      serial.threads = 1;
      mini.insert(mini.begin(), serial);
    }
    mini.push_back(other);
  }
  EvalResult ev = evaluate(source, cfg, mini);
  return !ev.skipped && ev.finding && ev.finding->kind == kind;
}

std::vector<workload::GenProgram> kernel_seed_corpus() {
  using workload::GenStmt;
  const auto stmt = [](GenStmt::Kind kind, int var, std::string op,
                       std::string expr) {
    GenStmt s;
    s.kind = kind;
    s.var = var;
    s.op = std::move(op);
    s.expr = std::move(expr);
    return s;
  };
  const auto assign = [&](int var, std::string expr) {
    return stmt(GenStmt::Kind::Assign, var, "", std::move(expr));
  };
  const auto add = [&](int var, std::string expr) {
    return stmt(GenStmt::Kind::Compound, var, "+=", std::move(expr));
  };
  const auto wait = [&] { return stmt(GenStmt::Kind::Wait, 0, "", ""); };
  const auto iff = [&](std::string cond, std::vector<GenStmt> then_body,
                       std::vector<GenStmt> else_body = {}) {
    GenStmt s;
    s.kind = GenStmt::Kind::If;
    s.expr = std::move(cond);
    s.body = std::move(then_body);
    s.else_body = std::move(else_body);
    return s;
  };
  const auto loop = [&](int trips, std::vector<GenStmt> body) {
    GenStmt s;
    s.kind = GenStmt::Kind::Loop;
    s.trips = trips;
    // Counter renders as ((expr) % trips) + 1: a constant trips-1 seed
    // yields exactly `trips` uniform iterations on every PE, so barriers
    // inside the body stay aligned (kernel phase loops are uniform).
    s.expr = cat(trips - 1);
    s.body = std::move(body);
    return s;
  };
  const auto shell = [](bool spawn) {
    workload::GenProgram p;
    p.opts.stmts = 6;
    p.opts.num_vars = 4;
    p.opts.allow_float = false;
    p.opts.allow_mono = false;
    p.opts.allow_spawn = spawn;
    p.ret_expr = "v0";
    return p;
  };

  std::vector<workload::GenProgram> out;

  // reduce: barrier-phased halving tree — alternating roles per level.
  workload::GenProgram reduce = shell(false);
  reduce.body = {loop(3, {iff("(procid() % 2) == 0", {add(0, "v1")},
                             {assign(1, "v0")}),
                          wait()})};
  out.push_back(std::move(reduce));

  // scan: Hillis-Steele double-barrier read/accumulate phases.
  workload::GenProgram scan = shell(false);
  scan.body = {loop(4, {assign(1, "v0 + procid()"), wait(),
                        add(0, "v1 / 2"), wait()})};
  out.push_back(std::move(scan));

  // oddeven: phase-parity compare-exchange with a phase counter.
  workload::GenProgram oddeven = shell(false);
  oddeven.body = {loop(4, {iff("(procid() + v3) % 2 == 0",
                               {assign(2, "v0 % 13")}, {assign(2, "v1 % 7")}),
                           wait(), add(3, "1"), wait()})};
  out.push_back(std::move(oddeven));

  // stencil: Jacobi-style relax into a scratch cell, publish, barrier.
  workload::GenProgram stencil = shell(false);
  stencil.body = {loop(4, {assign(3, "(v0 + 2 * v1 + v2) / 4"), wait(),
                           assign(1, "v3"), wait()})};
  out.push_back(std::move(stencil));

  // bfs: rounds of guarded frontier relaxation toward a fixpoint.
  workload::GenProgram bfs = shell(false);
  bfs.body = {loop(5, {iff("v0 > v1 + 1", {assign(0, "v1 + 1")}), wait()})};
  out.push_back(std::move(bfs));

  // workqueue: sparse parents spawn weighted children, then a join.
  workload::GenProgram workqueue = shell(true);
  GenStmt spawn;
  spawn.kind = GenStmt::Kind::Spawn;
  spawn.body = {add(0, "procid() * 17 % 23 + 1")};
  workqueue.body = {iff("procid() % 4 == 0", {std::move(spawn)}), wait(),
                    assign(1, "v0")};
  out.push_back(std::move(workqueue));

  return out;
}

FuzzResult run_fuzzer(const FuzzOptions& opts) {
  FuzzResult res;
  const std::vector<RunSpec> matrix =
      opts.matrix.empty() ? default_matrix() : opts.matrix;

  FuzzCoverage coverage;
  ScopedCoverage installed(&coverage);
  Rng rng(opts.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<workload::GenProgram> corpus;
  if (opts.seed_kernels)
    for (workload::GenProgram& k : kernel_seed_corpus())
      corpus.push_back(std::move(k));

  const auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= opts.time_budget_seconds;
  };

  while (!out_of_time()) {
    if (opts.max_iterations >= 0 && res.iterations >= opts.max_iterations)
      break;
    if (opts.max_findings > 0 &&
        static_cast<int>(res.findings.size()) >= opts.max_findings)
      break;
    ++res.iterations;

    workload::GenProgram cand;
    if (corpus.empty() || rng.chance(1, 4)) {
      cand = workload::generate_ast(
          opts.seed * 1000003 + static_cast<std::uint64_t>(res.iterations),
          opts.gen);
    } else {
      cand = corpus[rng.next_below(corpus.size())];
      const int rounds = 1 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < rounds; ++i) workload::mutate_program(cand, rng);
    }
    const std::string source = cand.render();
    if (source.size() > 16384) {  // keep mutation growth bounded
      ++res.skipped;
      continue;
    }

    coverage.begin_candidate();
    EvalResult ev = evaluate(source, opts.eval, matrix);
    if (ev.skipped) {
      ++res.skipped;
      continue;
    }
    if (ev.finding) {
      Finding f = *ev.finding;
      if (opts.log)
        *opts.log << "[mscfuzz] iteration " << res.iterations << ": "
                  << to_string(f.kind) << " in " << f.spec.label()
                  << (opts.shrink ? ", shrinking..." : "") << "\n";
      if (opts.shrink) {
        const RunSpec spec = f.spec;
        const FindingKind kind = f.kind;
        f.source = shrink_source(source, [&](const std::string& s) {
          return reproduces(s, opts.eval, spec, kind);
        });
      }
      if (!opts.out_dir.empty()) {
        namespace fs = std::filesystem;
        fs::create_directories(opts.out_dir);
        const std::string stem =
            cat("repro_", static_cast<std::int64_t>(res.findings.size()) + 1);
        const fs::path src_path = fs::path(opts.out_dir) / (stem + ".mimdc");
        const fs::path man_path = fs::path(opts.out_dir) / (stem + ".json");
        std::ofstream(src_path) << f.source;
        std::ofstream(man_path)
            << to_json(manifest_for(f, opts.eval, stem + ".mimdc"));
        res.written.push_back(src_path.string());
        res.written.push_back(man_path.string());
      }
      res.findings.push_back(std::move(f));
      continue;
    }
    if (coverage.merge() > 0) {
      corpus.push_back(std::move(cand));
      if (opts.log)
        *opts.log << "[mscfuzz] iteration " << res.iterations
                  << ": new coverage (" << coverage.total_features()
                  << " features, corpus " << corpus.size() << ")\n";
    }
  }

  res.corpus_size = corpus.size();
  res.features = coverage.total_features();
  return res;
}

}  // namespace msc::fuzz
