// Coverage bookkeeping and the differential option matrix.
#include "msc/fuzz/fuzz.hpp"

#include "msc/support/str.hpp"

namespace msc::fuzz {

std::size_t FuzzCoverage::merge() {
  std::size_t novel = 0;
  for (std::uint64_t f : current_)
    if (global_.insert(f).second) ++novel;
  return novel;
}

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::Divergence: return "divergence";
    case FindingKind::StatsMismatch: return "stats-mismatch";
    case FindingKind::Crash: return "crash";
    case FindingKind::CompileError: return "compile-error";
  }
  return "unknown";
}

std::string RunSpec::convert_key() const {
  return cat(compress ? "compress" : "base", compress && !subsume ? "-nosub" : "",
             barrier_mode == core::BarrierMode::PaperPrune ? "-prune" : "",
             time_split ? "-split" : "", "-t", threads);
}

std::string RunSpec::label() const {
  return cat(convert_key(), "/",
             engine == mimd::SimdEngine::Fast ? "fast" : "reference");
}

std::vector<RunSpec> default_matrix() {
  std::vector<RunSpec> m;
  auto add = [&](bool compress, bool subsume, core::BarrierMode mode,
                 bool split, unsigned threads, mimd::SimdEngine engine) {
    RunSpec s;
    s.compress = compress;
    s.subsume = subsume;
    s.barrier_mode = mode;
    s.time_split = split;
    s.threads = threads;
    s.engine = engine;
    m.push_back(s);
  };
  using core::BarrierMode;
  using mimd::SimdEngine;
  // Base mode on both engines, plus a threads=2 conversion whose automaton
  // must be bit-identical to the serial one (checked inside evaluate()).
  add(false, true, BarrierMode::TrackOccupancy, false, 1, SimdEngine::Fast);
  add(false, true, BarrierMode::TrackOccupancy, false, 1, SimdEngine::Reference);
  add(false, true, BarrierMode::TrackOccupancy, false, 2, SimdEngine::Fast);
  // The paper's §2.6 pruning rule (skipped per-candidate when >1 barrier
  // state makes it unsound).
  add(false, true, BarrierMode::PaperPrune, false, 1, SimdEngine::Fast);
  add(false, true, BarrierMode::PaperPrune, false, 1, SimdEngine::Reference);
  // §2.5 compression, with and without Fig. 5 subsumption.
  add(true, true, BarrierMode::TrackOccupancy, false, 1, SimdEngine::Fast);
  add(true, true, BarrierMode::TrackOccupancy, false, 1, SimdEngine::Reference);
  add(true, false, BarrierMode::TrackOccupancy, false, 1, SimdEngine::Fast);
  // §2.4 time splitting (restart machinery + split graphs).
  add(false, true, BarrierMode::TrackOccupancy, true, 1, SimdEngine::Fast);
  add(false, true, BarrierMode::TrackOccupancy, true, 1, SimdEngine::Reference);
  return m;
}

}  // namespace msc::fuzz
