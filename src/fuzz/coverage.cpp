// Coverage bookkeeping and the differential option matrix.
#include "msc/fuzz/fuzz.hpp"

#include "msc/simd/machine.hpp"

#include "msc/support/str.hpp"

namespace msc::fuzz {

std::size_t FuzzCoverage::merge() {
  std::size_t novel = 0;
  for (std::uint64_t f : current_)
    if (global_.insert(f).second) ++novel;
  return novel;
}

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::Divergence: return "divergence";
    case FindingKind::StatsMismatch: return "stats-mismatch";
    case FindingKind::Crash: return "crash";
    case FindingKind::CompileError: return "compile-error";
    case FindingKind::UnsoundAccept: return "unsound-accept";
  }
  return "unknown";
}

bool RunSpec::has(const std::string& pass) const {
  for (const std::string& name : pipeline)
    if (name == pass) return true;
  return false;
}

std::string RunSpec::convert_key() const {
  return cat(join(pipeline, ","),
             barrier_mode == core::BarrierMode::PaperPrune ? "-prune" : "",
             "-t", threads);
}

std::string RunSpec::label() const {
  return cat(convert_key(), "/", simd::engine_name(engine));
}

std::vector<RunSpec> default_matrix() {
  std::vector<RunSpec> m;
  auto add = [&](std::vector<std::string> pipeline, core::BarrierMode mode,
                 unsigned threads, mimd::SimdEngine engine) {
    RunSpec s;
    s.pipeline = std::move(pipeline);
    s.barrier_mode = mode;
    s.threads = threads;
    s.engine = engine;
    m.push_back(s);
  };
  using core::BarrierMode;
  using mimd::SimdEngine;
  const std::vector<std::string> base = {"convert", "subsume", "straighten"};
  const std::vector<std::string> comp = {"compress", "convert", "subsume",
                                         "straighten"};
  // Base pipeline on both engines, plus a threads=2 conversion whose
  // automaton must be bit-identical to the serial one (checked inside
  // evaluate()).
  add(base, BarrierMode::TrackOccupancy, 1, SimdEngine::Fast);
  add(base, BarrierMode::TrackOccupancy, 1, SimdEngine::Reference);
  add(base, BarrierMode::TrackOccupancy, 1, SimdEngine::Codegen);
  add(base, BarrierMode::TrackOccupancy, 2, SimdEngine::Fast);
  // The paper's §2.6 pruning rule (cells the converter must *reject* —
  // compress/spawn/multi-barrier — are asserted inside evaluate()).
  add(base, BarrierMode::PaperPrune, 1, SimdEngine::Fast);
  add(base, BarrierMode::PaperPrune, 1, SimdEngine::Reference);
  add(base, BarrierMode::PaperPrune, 1, SimdEngine::Codegen);
  // §2.5 compression, with and without Fig. 5 subsumption.
  add(comp, BarrierMode::TrackOccupancy, 1, SimdEngine::Fast);
  add(comp, BarrierMode::TrackOccupancy, 1, SimdEngine::Reference);
  add(comp, BarrierMode::TrackOccupancy, 1, SimdEngine::Codegen);
  add({"compress", "convert", "straighten"}, BarrierMode::TrackOccupancy, 1,
      SimdEngine::Fast);
  // §2.4 time splitting (restart machinery + split graphs).
  add({"time-split", "convert", "subsume", "straighten"},
      BarrierMode::TrackOccupancy, 1, SimdEngine::Fast);
  add({"time-split", "convert", "subsume", "straighten"},
      BarrierMode::TrackOccupancy, 1, SimdEngine::Reference);
  add({"time-split", "convert", "subsume", "straighten"},
      BarrierMode::TrackOccupancy, 1, SimdEngine::Codegen);
  // Custom-order coverage: the dme cleanup pass, straighten-less layout.
  add({"convert", "subsume", "dme"}, BarrierMode::TrackOccupancy, 1,
      SimdEngine::Fast);
  return m;
}

}  // namespace msc::fuzz
