// Deterministic delta-debugging over MIMDC source text.
//
// The generator renders strictly line-structured code (every `{` ends its
// line, every closing `}` starts one), so shrinking works on lines and
// brace-balanced regions instead of a parse tree — which lets --replay and
// --shrink-only shrink any manifest's source file, not just programs the
// generator produced. Rewrites are tried in one fixed order per round and
// a rewrite is accepted only when it strictly shrinks the text, so the
// whole pass is a pure function of (source, predicate): it terminates (the
// byte count is a strictly decreasing measure) and re-shrinking its own
// output is the identity (the corpus stability check in fuzz_selftest).
#include "msc/fuzz/fuzz.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace msc::fuzz {
namespace {

using Lines = std::vector<std::string>;

Lines split_lines(const std::string& text) {
  Lines lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string join_lines(const Lines& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

int brace_delta(const std::string& line) {
  int d = 0;
  for (char c : line) {
    if (c == '{') ++d;
    if (c == '}') --d;
  }
  return d;
}

std::string trimmed(const std::string& line) {
  std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = line.find_last_not_of(" \t");
  return line.substr(b, e - b + 1);
}

/// Index of the line that closes the region opened at `open`
/// (brace_delta(lines[open]) > 0), or npos when unbalanced.
std::size_t find_close(const Lines& lines, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < lines.size(); ++i) {
    depth += brace_delta(lines[i]);
    if (depth <= 0) return i;
  }
  return std::string::npos;
}

/// The region's top-level `} else {` line, or npos.
std::size_t find_else(const Lines& lines, std::size_t open, std::size_t close) {
  int depth = 0;
  for (std::size_t i = open; i < close; ++i) {
    if (i > open && depth == 1 && trimmed(lines[i]) == "} else {") return i;
    depth += brace_delta(lines[i]);
  }
  return std::string::npos;
}

Lines erase_range(const Lines& lines, std::size_t from, std::size_t to) {
  Lines out;
  out.reserve(lines.size() - (to - from + 1));
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (i < from || i > to) out.push_back(lines[i]);
  return out;
}

/// Replace [from..to] with the sub-range [keep_from..keep_to].
Lines splice_range(const Lines& lines, std::size_t from, std::size_t to,
                   std::size_t keep_from, std::size_t keep_to) {
  Lines out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i < from || i > to) {
      out.push_back(lines[i]);
    } else if (i >= keep_from && i <= keep_to && keep_from <= keep_to) {
      out.push_back(lines[i]);
    }
  }
  return out;
}

std::size_t total_bytes(const Lines& lines) {
  std::size_t n = 0;
  for (const std::string& l : lines) n += l.size() + 1;
  return n;
}

}  // namespace

std::string shrink_source(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_fails,
    int max_checks) {
  int checks = 0;
  auto check = [&](const Lines& cand) {
    if (cand.empty()) return false;  // the empty program is never a repro
    if (checks >= max_checks) return false;
    ++checks;
    try {
      return still_fails(join_lines(cand));
    } catch (...) {
      return false;  // a predicate that blows up never accepts
    }
  };

  Lines lines = split_lines(source);
  if (!check(lines)) return source;  // does not reproduce as-is: keep it

  bool changed = true;
  while (changed && checks < max_checks) {
    changed = false;
    const std::size_t before = total_bytes(lines);

    // Pass 1: brace regions — delete whole, or unwrap to a branch body.
    for (std::size_t i = 0; i < lines.size() && !changed; ++i) {
      if (brace_delta(lines[i]) <= 0) continue;
      const std::size_t j = find_close(lines, i);
      if (j == std::string::npos || j <= i) continue;
      Lines cand = erase_range(lines, i, j);
      if (check(cand)) {
        lines = std::move(cand);
        changed = true;
        break;
      }
      const std::size_t k = find_else(lines, i, j);
      if (k == std::string::npos) {
        if (j > i + 1) {
          cand = splice_range(lines, i, j, i + 1, j - 1);
          if (check(cand)) {
            lines = std::move(cand);
            changed = true;
          }
        }
      } else {
        cand = splice_range(lines, i, j, i + 1, k - 1);  // keep then-branch
        if (check(cand)) {
          lines = std::move(cand);
          changed = true;
          break;
        }
        cand = splice_range(lines, i, j, k + 1, j - 1);  // keep else-branch
        if (check(cand)) {
          lines = std::move(cand);
          changed = true;
        }
      }
    }
    if (changed) continue;

    // Pass 2: single statement lines (no braces involved).
    for (std::size_t i = 0; i < lines.size() && !changed; ++i) {
      const std::string t = trimmed(lines[i]);
      if (t.empty() || brace_delta(lines[i]) != 0) continue;
      if (t.find('{') != std::string::npos ||
          t.find('}') != std::string::npos)
        continue;
      if (t.back() != ';') continue;
      Lines cand = erase_range(lines, i, i);
      if (check(cand)) {
        lines = std::move(cand);
        changed = true;
      }
    }
    if (changed) continue;

    // Pass 3: expression simplification (strictly shorter only).
    for (std::size_t i = 0; i < lines.size() && !changed; ++i) {
      const std::string t = trimmed(lines[i]);
      const std::string indent =
          lines[i].substr(0, lines[i].size() - t.size());
      std::string repl;
      if (t.rfind("return ", 0) == 0 && t.back() == ';' &&
          t != "return 0;") {
        repl = "return 0;";
      } else if (t.rfind("if (", 0) == 0 && t.size() > 2 &&
                 t.compare(t.size() - 2, 2, ") {") == 0 && t != "if (1) {") {
        repl = "if (1) {";
      } else if (brace_delta(lines[i]) == 0 && t.back() == ';' &&
                 t.find('{') == std::string::npos) {
        const std::size_t eq = t.find(" = ");
        if (eq != std::string::npos && t.compare(eq, 4, " == ") != 0) {
          std::string zeroed = t.substr(0, eq) + " = 0;";
          if (zeroed != t) repl = zeroed;
        }
      }
      if (repl.empty() || indent.size() + repl.size() >= lines[i].size())
        continue;
      Lines cand = lines;
      cand[i] = indent + repl;
      if (check(cand)) {
        lines = std::move(cand);
        changed = true;
      }
    }

    // Every accepted rewrite strictly shrinks; belt-and-braces guard so a
    // future rule can't loop.
    if (changed && total_bytes(lines) >= before) break;
  }
  return join_lines(lines);
}

}  // namespace msc::fuzz
