#ifndef MSC_FUZZ_MANIFEST_HPP
#define MSC_FUZZ_MANIFEST_HPP

#include <string>

#include "msc/fuzz/fuzz.hpp"

namespace msc::fuzz {

/// JSON repro manifest: everything needed to replay one reproducer —
/// the source file it points at, the machine configuration, and the
/// matrix cell that exposed the failure. Checked-in corpus manifests are
/// replayed by corpus_regression_test and by `mscfuzz --replay`.
struct Manifest {
  int schema = 1;
  /// Finding kind this reproducer was minimized against ("divergence",
  /// "stats-mismatch", "crash", "compile-error") or "corpus" for a
  /// checked-in known-tricky shape that must keep matching.
  std::string kind = "corpus";
  /// Source path, relative to the manifest's own directory.
  std::string source_file;
  /// "match" = every matrix cell must agree with the oracle;
  /// "fault" = the program faults, and SIMD must fault exactly when the
  /// oracle does (spawn-exhaustion shapes).
  std::string expect = "match";
  std::int64_t nprocs = 6;
  std::int64_t initial_active = -1;
  std::uint64_t input_seed = 1;
  bool reuse_halted_pes = false;
  // The matrix cell (for kind != "corpus" replays).
  /// Comma-separated conversion-stage pass pipeline (schema 1 with passes,
  /// e.g. "compress,convert,subsume,straighten"). Empty = derive from the
  /// legacy boolean fields below, so pre-pipeline manifests keep replaying.
  std::string pipeline;
  bool compress = false;    ///< legacy (parse-only fallback)
  bool subsume = true;      ///< legacy (parse-only fallback)
  bool prune = false;
  bool time_split = false;  ///< legacy (parse-only fallback)
  unsigned threads = 1;
  std::string engine = "fast";
  std::string note;

  RunSpec spec() const;
  EvalConfig eval_config() const;
  FindingKind finding_kind() const;  ///< throws for kind == "corpus"
};

std::string to_json(const Manifest& m);

/// Parse a manifest from its JSON text (flat object; throws
/// std::runtime_error with a position on malformed input or wrong schema).
Manifest parse_manifest(const std::string& json);

/// Read `path`, parse it, and (when `source_out` is non-null) also read
/// the referenced source file relative to the manifest's directory.
Manifest load_manifest(const std::string& path, std::string* source_out);

/// Build the manifest for a finding produced by run_fuzzer.
Manifest manifest_for(const Finding& finding, const EvalConfig& cfg,
                      const std::string& source_file);

}  // namespace msc::fuzz

#endif  // MSC_FUZZ_MANIFEST_HPP
