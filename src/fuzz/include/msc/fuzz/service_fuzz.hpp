#ifndef MSC_FUZZ_SERVICE_FUZZ_HPP
#define MSC_FUZZ_SERVICE_FUZZ_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace msc::fuzz {

/// Wire-format fuzzing for the mscd protocol engine (mscfuzz --target
/// service). Mutated request frames are thrown at a live in-process
/// service::Service — no sockets, so a finding is a pure function of the
/// frame sequence — and every response is checked against the protocol
/// contract:
///
///   1. handle_line() returns exactly one line (no embedded newline) and
///      never throws;
///   2. the line parses as a JSON object with "schema": 1 and a boolean
///      "ok";
///   3. an "ok": false response carries a typed error kind from the
///      published taxonomy;
///   4. a frame over the configured limit is answered "frame-too-large".
///
/// Findings shrink to a minimal replayable request log (one frame per
/// line, the service_*.reqlog format under tests/corpus/).
struct ServiceFuzzOptions {
  std::uint64_t seed = 1;
  double time_budget_seconds = 10.0;
  std::int64_t max_iterations = 0;  ///< 0 = bounded by the time budget
  int max_findings = 4;
  /// Frames per candidate: protocol state (cache, quotas, shutdown) only
  /// shows up across sequences, not single requests.
  int frames_per_candidate = 4;
  /// Small frame limit so the FrameTooLarge path is actually reachable.
  std::size_t max_frame_bytes = 8192;
  bool shrink = true;
  /// When non-empty, write finding_<n>.reqlog files here.
  std::string out_dir;
};

struct ServiceFinding {
  std::string detail;                ///< violated contract clause
  std::vector<std::string> frames;   ///< shrunk replayable request log
};

struct ServiceFuzzResult {
  std::int64_t iterations = 0;
  std::size_t corpus_size = 0;       ///< coverage-novel frames retained
  std::size_t total_features = 0;
  std::vector<ServiceFinding> findings;
};

ServiceFuzzResult fuzz_service(const ServiceFuzzOptions& options);

/// Replay a request log (one frame per line) against a fresh in-process
/// service and re-check the protocol contract. Returns true when every
/// frame passes; on failure `detail` names the violation.
bool replay_request_log(const std::vector<std::string>& frames,
                        std::size_t max_frame_bytes, std::string* detail);

}  // namespace msc::fuzz

#endif  // MSC_FUZZ_SERVICE_FUZZ_HPP
