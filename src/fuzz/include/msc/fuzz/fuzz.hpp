#ifndef MSC_FUZZ_FUZZ_HPP
#define MSC_FUZZ_FUZZ_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "msc/core/convert.hpp"
#include "msc/mimd/machine.hpp"
#include "msc/support/coverage.hpp"
#include "msc/workload/generator.hpp"

namespace msc::fuzz {

// --------------------------------------------------------------- coverage

/// Coverage accumulator the fuzzer installs as the process-global
/// CoverageSink. Features are (signal, key) pairs reported by the
/// converter and the SIMD engines (see msc/support/coverage.hpp);
/// a candidate that produces a feature never seen before earns a place
/// in the corpus.
class FuzzCoverage final : public CoverageSink {
 public:
  void hit(std::uint32_t signal, std::uint64_t key) override {
    current_.insert((static_cast<std::uint64_t>(signal) << 48) ^ (key & kKeyMask));
  }

  /// Start collecting for a new candidate.
  void begin_candidate() { current_.clear(); }
  /// Fold the candidate's features into the global set; returns how many
  /// were novel.
  std::size_t merge();

  std::size_t total_features() const { return global_.size(); }
  std::size_t candidate_features() const { return current_.size(); }

 private:
  static constexpr std::uint64_t kKeyMask = (std::uint64_t{1} << 48) - 1;
  std::unordered_set<std::uint64_t> current_;
  std::unordered_set<std::uint64_t> global_;
};

/// RAII: install a sink, restore the previous one on scope exit.
class ScopedCoverage {
 public:
  explicit ScopedCoverage(CoverageSink* sink) : prev_(coverage_sink()) {
    set_coverage_sink(sink);
  }
  ~ScopedCoverage() { set_coverage_sink(prev_); }
  ScopedCoverage(const ScopedCoverage&) = delete;
  ScopedCoverage& operator=(const ScopedCoverage&) = delete;

 private:
  CoverageSink* prev_;
};

// ------------------------------------------------------- option matrix

/// One cell of the differential option matrix: the conversion-stage pass
/// pipeline to run over the compiled graph, the engine-level conversion
/// knobs that are not passes (barrier mode, thread width), and which SIMD
/// engine executes the result.
struct RunSpec {
  /// Pass names (pass registry) executed over the already-compiled state
  /// graph — config passes, the convert pass, and automaton passes; the
  /// IR passes run once during compilation, outside the matrix.
  std::vector<std::string> pipeline = {"convert", "subsume", "straighten"};
  core::BarrierMode barrier_mode = core::BarrierMode::TrackOccupancy;
  unsigned threads = 1;
  mimd::SimdEngine engine = mimd::SimdEngine::Fast;

  bool has(const std::string& pass) const;
  /// Conversion-relevant part (engines sharing it reuse one conversion).
  std::string convert_key() const;
  std::string label() const;
};

/// The full matrix a candidate runs through: pass pipelines (base,
/// compressed, compressed-without-subsume, time-split) × barrier_mode ×
/// threads × engine, minus combinations that are redundant or unsound
/// (PaperPrune cells where the converter must reject the program —
/// compress, spawn, or >1 barrier state — instead assert the rejection
/// inside evaluate()).
std::vector<RunSpec> default_matrix();

// ------------------------------------------------------------- findings

enum class FindingKind : std::uint8_t {
  Divergence,     ///< SIMD result/fault disagrees with the MIMD oracle
  StatsMismatch,  ///< engines or thread widths disagree on stats/automata
  Crash,          ///< unexpected exception anywhere in the pipeline
  CompileError,   ///< generator/mutator produced an uncompilable program
  UnsoundAccept,  ///< converter accepted a PaperPrune combination it must reject
};
const char* to_string(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::Divergence;
  RunSpec spec;          ///< the matrix cell that exposed it
  std::string source;    ///< the failing program (shrunk when enabled)
  std::string detail;    ///< human-readable evidence
};

// ------------------------------------------------------------ evaluation

/// Per-candidate run configuration shared by fuzzing, replay, and the
/// corpus regression suite.
struct EvalConfig {
  std::int64_t nprocs = 6;
  std::int64_t initial_active = -1;  ///< -1 = all (spawn needs headroom)
  std::uint64_t input_seed = 1;      ///< per-PE seed for the poly input x
  bool reuse_halted_pes = false;
  std::size_t max_meta_states = 20000;  ///< per-conversion explosion guard
  /// Test-only conversion corruptor (fuzz_selftest injects converter bugs
  /// here to mutation-test the whole detect→shrink pipeline).
  std::function<void(core::ConvertResult&)> corrupt_conversion;
};

struct EvalResult {
  bool skipped = false;  ///< oracle timeout / every mode exploded
  std::optional<Finding> finding;
};

/// Differentially evaluate one program across the matrix: MIMD oracle
/// first, then each conversion+engine cell; compares results (multiset
/// comparison when the program spawns), fault behaviour, engine-pair
/// stats, and thread-width automaton determinism.
EvalResult evaluate(const std::string& source, const EvalConfig& cfg,
                    const std::vector<RunSpec>& matrix);

/// Does `source` still produce a finding of `kind` in matrix cell `spec`?
/// (The shrinker's predicate; also used by --replay.)
bool reproduces(const std::string& source, const EvalConfig& cfg,
                const RunSpec& spec, FindingKind kind);

// ---------------------------------------------------------------- fuzzer

struct FuzzOptions {
  std::uint64_t seed = 1;
  double time_budget_seconds = 10.0;
  std::int64_t max_iterations = -1;  ///< <0 = until the time budget ends
  int max_findings = 4;              ///< stop after this many findings
  bool shrink = true;
  /// Pre-seed the mutation corpus with kernel_seed_corpus() so mutations
  /// start from real barrier/reduction/spawn control shapes instead of
  /// only random trees.
  bool seed_kernels = true;
  EvalConfig eval;
  workload::GenOptions gen;
  std::vector<RunSpec> matrix;  ///< empty = default_matrix()
  std::string out_dir;          ///< write repro pairs here ("" = don't)
  std::ostream* log = nullptr;  ///< progress lines ("" = silent)
};

struct FuzzResult {
  std::int64_t iterations = 0;
  std::int64_t skipped = 0;
  std::size_t corpus_size = 0;
  std::size_t features = 0;
  std::vector<Finding> findings;
  std::vector<std::string> written;  ///< paths of emitted repro files
};

/// The coverage-guided loop: generate/mutate → differential evaluate →
/// corpus on novel coverage; findings are shrunk and written as
/// repro_<n>.mimdc + repro_<n>.json pairs under out_dir.
FuzzResult run_fuzzer(const FuzzOptions& opts);

/// Kernel-shaped mutation seeds (DESIGN.md §12): one GenProgram skeleton
/// per verified kernel (reduce, scan, oddeven, stencil, bfs, workqueue)
/// mirroring its control shape — barrier-phased loops, divergent
/// compare-exchange, frontier relaxation, spawn fan-out. Router-free by
/// construction so every skeleton keeps the generator's race-freedom and
/// termination invariants under mutate_program.
std::vector<workload::GenProgram> kernel_seed_corpus();

// --------------------------------------------------------------- shrink

/// Deterministic delta-debugging on source text: statement and block
/// removal, block unwrapping, and expression simplification, iterated to
/// a fixpoint. Every accepted rewrite strictly shrinks the source, and
/// candidate rewrites are tried in a fixed order, so shrinking is a pure
/// function of (source, predicate) — re-shrinking its own output returns
/// it unchanged (corpus reproducers are stable by construction).
/// `still_fails` must return true when the candidate still exhibits the
/// original failure; `max_checks` caps predicate calls.
std::string shrink_source(const std::string& source,
                          const std::function<bool(const std::string&)>& still_fails,
                          int max_checks = 4000);

}  // namespace msc::fuzz

#endif  // MSC_FUZZ_FUZZ_HPP
