#include "msc/frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace msc::frontend {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::IntLit: return "int literal";
    case Tok::FloatLit: return "float literal";
    case Tok::Ident: return "identifier";
    case Tok::KwInt: return "'int'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwMono: return "'mono'";
    case Tok::KwPoly: return "'poly'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwDo: return "'do'";
    case Tok::KwFor: return "'for'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwWait: return "'wait'";
    case Tok::KwSpawn: return "'spawn'";
    case Tok::KwHalt: return "'halt'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Assign: return "'='";
    case Tok::PlusEq: return "'+='";
    case Tok::MinusEq: return "'-='";
    case Tok::StarEq: return "'*='";
    case Tok::SlashEq: return "'/='";
    case Tok::PercentEq: return "'%='";
    case Tok::AmpEq: return "'&='";
    case Tok::PipeEq: return "'|='";
    case Tok::CaretEq: return "'^='";
    case Tok::ShlEq: return "'<<='";
    case Tok::ShrEq: return "'>>='";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"int", Tok::KwInt},       {"float", Tok::KwFloat},
      {"void", Tok::KwVoid},     {"mono", Tok::KwMono},
      {"poly", Tok::KwPoly},     {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile},
      {"do", Tok::KwDo},         {"for", Tok::KwFor},
      {"return", Tok::KwReturn}, {"wait", Tok::KwWait},
      {"spawn", Tok::KwSpawn},   {"halt", Tok::KwHalt},
      {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
  };
  return kw;
}
}  // namespace

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool done = t.kind == Tok::Eof;
    out.push_back(std::move(t));
    if (done) break;
  }
  return out;
}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::at_end() const { return pos_ >= src_.size(); }

void Lexer::skip_ws_and_comments() {
  for (;;) {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
      continue;
    }
    if (peek() == '/' && peek(1) == '*') {
      SourceLoc start{line_, col_};
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (at_end()) throw CompileError(start, "unterminated block comment");
      advance();
      advance();
      continue;
    }
    break;
  }
}

Token Lexer::make(Tok kind, SourceLoc loc, std::string text) {
  Token t;
  t.kind = kind;
  t.loc = loc;
  t.text = std::move(text);
  return t;
}

Token Lexer::lex_number(SourceLoc loc) {
  std::string text;
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    text.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
  }
  if (peek() == 'e' || peek() == 'E') {
    std::size_t save = pos_;
    std::string expo;
    expo.push_back(advance());
    if (peek() == '+' || peek() == '-') expo.push_back(advance());
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      is_float = true;
      while (std::isdigit(static_cast<unsigned char>(peek()))) expo.push_back(advance());
      text += expo;
    } else {
      pos_ = save;  // 'e' begins an identifier, not an exponent
    }
  }
  Token t = make(is_float ? Tok::FloatLit : Tok::IntLit, loc, text);
  if (is_float) {
    t.float_val = std::strtod(text.c_str(), nullptr);
  } else {
    t.int_val = std::strtoll(text.c_str(), nullptr, 10);
  }
  return t;
}

Token Lexer::lex_ident(SourceLoc loc) {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    text.push_back(advance());
  auto it = keywords().find(text);
  if (it != keywords().end()) return make(it->second, loc, text);
  return make(Tok::Ident, loc, text);
}

Token Lexer::next() {
  skip_ws_and_comments();
  SourceLoc loc{line_, col_};
  if (at_end()) return make(Tok::Eof, loc);

  char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident(loc);

  advance();
  switch (c) {
    case '(': return make(Tok::LParen, loc);
    case ')': return make(Tok::RParen, loc);
    case '{': return make(Tok::LBrace, loc);
    case '}': return make(Tok::RBrace, loc);
    case '[': return make(Tok::LBracket, loc);
    case ']': return make(Tok::RBracket, loc);
    case ';': return make(Tok::Semi, loc);
    case ',': return make(Tok::Comma, loc);
    case '+':
      if (peek() == '=') {
        advance();
        return make(Tok::PlusEq, loc);
      }
      if (peek() == '+') {
        advance();
        return make(Tok::PlusPlus, loc);
      }
      return make(Tok::Plus, loc);
    case '-':
      if (peek() == '=') {
        advance();
        return make(Tok::MinusEq, loc);
      }
      if (peek() == '-') {
        advance();
        return make(Tok::MinusMinus, loc);
      }
      return make(Tok::Minus, loc);
    case '*':
      if (peek() == '=') {
        advance();
        return make(Tok::StarEq, loc);
      }
      return make(Tok::Star, loc);
    case '/':
      if (peek() == '=') {
        advance();
        return make(Tok::SlashEq, loc);
      }
      return make(Tok::Slash, loc);
    case '%':
      if (peek() == '=') {
        advance();
        return make(Tok::PercentEq, loc);
      }
      return make(Tok::Percent, loc);
    case '^':
      if (peek() == '=') {
        advance();
        return make(Tok::CaretEq, loc);
      }
      return make(Tok::Caret, loc);
    case '~': return make(Tok::Tilde, loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(Tok::AmpAmp, loc);
      }
      if (peek() == '=') {
        advance();
        return make(Tok::AmpEq, loc);
      }
      return make(Tok::Amp, loc);
    case '|':
      if (peek() == '|') {
        advance();
        return make(Tok::PipePipe, loc);
      }
      if (peek() == '=') {
        advance();
        return make(Tok::PipeEq, loc);
      }
      return make(Tok::Pipe, loc);
    case '!':
      if (peek() == '=') {
        advance();
        return make(Tok::Ne, loc);
      }
      return make(Tok::Bang, loc);
    case '=':
      if (peek() == '=') {
        advance();
        return make(Tok::Eq, loc);
      }
      return make(Tok::Assign, loc);
    case '<':
      if (peek() == '=') {
        advance();
        return make(Tok::Le, loc);
      }
      if (peek() == '<') {
        advance();
        if (peek() == '=') {
          advance();
          return make(Tok::ShlEq, loc);
        }
        return make(Tok::Shl, loc);
      }
      return make(Tok::Lt, loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(Tok::Ge, loc);
      }
      if (peek() == '>') {
        advance();
        if (peek() == '=') {
          advance();
          return make(Tok::ShrEq, loc);
        }
        return make(Tok::Shr, loc);
      }
      return make(Tok::Gt, loc);
    default:
      throw CompileError(loc, std::string("unexpected character '") + c + "'");
  }
}

}  // namespace msc::frontend
