#include "msc/frontend/sema.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "msc/support/str.hpp"

namespace msc::frontend {

namespace {

/// Lexically scoped symbol table.
class Scopes {
 public:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  void declare(VarDecl* decl) {
    auto& top = scopes_.back();
    if (top.count(decl->name))
      throw CompileError(decl->loc, cat("redeclaration of '", decl->name, "'"));
    top[decl->name] = decl;
  }

  VarDecl* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::unordered_map<std::string, VarDecl*>> scopes_;
};

class Sema {
 public:
  Sema(Program& prog, Diagnostics& diags) : prog_(prog), diags_(diags) {}

  Layout run() {
    check_entry_point();
    mark_recursion();
    layout_globals();
    for (auto& fn : prog_.funcs) analyze_function(*fn);
    layout_.frame_stack_base = layout_.poly_static_size;
    return layout_;
  }

 private:
  // ----------------------------------------------------------- entry point

  void check_entry_point() {
    FuncDecl* main = prog_.find_func("main");
    if (!main) throw CompileError({}, "program has no main function");
    if (main->ret_ty != Ty::Int)
      throw CompileError(main->loc, "main must return int");
    if (!main->params.empty())
      throw CompileError(main->loc, "main must take no parameters");
    std::unordered_set<std::string> names;
    for (const auto& fn : prog_.funcs) {
      if (!names.insert(fn->name).second)
        throw CompileError(fn->loc, cat("redefinition of function '", fn->name, "'"));
    }
  }

  // ------------------------------------------------------------- recursion

  /// Mark every function that participates in a call-graph cycle (§2.2:
  /// these need the return-site-stack treatment instead of plain inlining).
  void mark_recursion() {
    std::unordered_map<std::string, std::vector<std::string>> edges;
    for (const auto& fn : prog_.funcs) collect_calls(*fn->body, edges[fn->name]);

    // Tarjan SCC over function names.
    struct NodeInfo {
      int index = -1, lowlink = -1;
      bool on_stack = false;
    };
    std::unordered_map<std::string, NodeInfo> info;
    std::vector<std::string> stack;
    int counter = 0;

    // Iterative Tarjan to avoid deep native recursion on generated inputs.
    struct Frame {
      std::string node;
      std::size_t edge_idx = 0;
    };
    for (const auto& fn : prog_.funcs) {
      if (info[fn->name].index != -1) continue;
      std::vector<Frame> work{{fn->name}};
      while (!work.empty()) {
        Frame& fr = work.back();
        NodeInfo& ni = info[fr.node];
        if (fr.edge_idx == 0) {
          ni.index = ni.lowlink = counter++;
          stack.push_back(fr.node);
          ni.on_stack = true;
        }
        const auto& out = edges[fr.node];
        bool descended = false;
        while (fr.edge_idx < out.size()) {
          const std::string& next = out[fr.edge_idx++];
          if (!prog_.find_func(next)) continue;  // unresolved; reported later
          NodeInfo& mi = info[next];
          if (mi.index == -1) {
            work.push_back({next});
            descended = true;
            break;
          }
          if (mi.on_stack) ni.lowlink = std::min(ni.lowlink, mi.index);
        }
        if (descended) continue;
        if (ni.lowlink == ni.index) {
          std::vector<std::string> scc;
          for (;;) {
            std::string w = stack.back();
            stack.pop_back();
            info[w].on_stack = false;
            scc.push_back(w);
            if (w == fr.node) break;
          }
          bool self_loop = false;
          const auto& self_edges = edges[scc[0]];
          if (scc.size() == 1)
            self_loop = std::find(self_edges.begin(), self_edges.end(), scc[0]) !=
                        self_edges.end();
          if (scc.size() > 1 || self_loop)
            for (const auto& name : scc) prog_.find_func(name)->recursive = true;
        }
        std::string done = fr.node;
        work.pop_back();
        if (!work.empty()) {
          NodeInfo& parent = info[work.back().node];
          parent.lowlink = std::min(parent.lowlink, info[done].lowlink);
        }
      }
    }
  }

  void collect_calls(const Stmt& s, std::vector<std::string>& out) {
    switch (s.kind) {
      case StmtKind::Expr:
        collect_calls(*static_cast<const ExprStmt&>(s).expr, out);
        break;
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) collect_calls(*d.init, out);
        break;
      }
      case StmtKind::Block:
        for (const auto& st : static_cast<const BlockStmt&>(s).stmts)
          collect_calls(*st, out);
        break;
      case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        collect_calls(*x.cond, out);
        collect_calls(*x.then_branch, out);
        if (x.else_branch) collect_calls(*x.else_branch, out);
        break;
      }
      case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        collect_calls(*x.cond, out);
        collect_calls(*x.body, out);
        break;
      }
      case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        collect_calls(*x.body, out);
        collect_calls(*x.cond, out);
        break;
      }
      case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        if (x.init) collect_calls(*x.init, out);
        if (x.cond) collect_calls(*x.cond, out);
        if (x.step) collect_calls(*x.step, out);
        collect_calls(*x.body, out);
        break;
      }
      case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        if (x.value) collect_calls(*x.value, out);
        break;
      }
      case StmtKind::Spawn:
        collect_calls(*static_cast<const SpawnStmt&>(s).body, out);
        break;
      default:
        break;
    }
  }

  void collect_calls(const Expr& e, std::vector<std::string>& out) {
    switch (e.kind) {
      case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        collect_calls(*x.base, out);
        collect_calls(*x.index, out);
        break;
      }
      case ExprKind::ParIndex: {
        const auto& x = static_cast<const ParIndexExpr&>(e);
        collect_calls(*x.base, out);
        collect_calls(*x.proc, out);
        break;
      }
      case ExprKind::Unary:
        collect_calls(*static_cast<const UnaryExpr&>(e).operand, out);
        break;
      case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        collect_calls(*x.lhs, out);
        collect_calls(*x.rhs, out);
        break;
      }
      case ExprKind::Assign: {
        const auto& x = static_cast<const AssignExpr&>(e);
        collect_calls(*x.target, out);
        collect_calls(*x.value, out);
        break;
      }
      case ExprKind::CompoundAssign: {
        const auto& x = static_cast<const CompoundAssignExpr&>(e);
        collect_calls(*x.target, out);
        collect_calls(*x.value, out);
        break;
      }
      case ExprKind::IncDec:
        collect_calls(*static_cast<const IncDecExpr&>(e).target, out);
        break;
      case ExprKind::Call: {
        const auto& x = static_cast<const CallExpr&>(e);
        out.push_back(x.callee);
        for (const auto& a : x.args) collect_calls(*a, out);
        break;
      }
      default:
        break;
    }
  }

  // ---------------------------------------------------------------- layout

  void layout_globals() {
    for (auto& g : prog_.globals) {
      if (scopes_global_.count(g->name))
        throw CompileError(g->loc, cat("redeclaration of global '", g->name, "'"));
      scopes_global_[g->name] = g.get();
      if (g->qual == Qual::Mono) {
        g->storage = Storage::MonoStatic;
        g->addr = layout_.mono_size;
        layout_.mono_size += g->cell_count();
      } else {
        g->storage = Storage::PolyStatic;
        g->addr = layout_.poly_static_size;
        layout_.poly_static_size += g->cell_count();
      }
      layout_.globals[g->name] = {g->storage, g->addr, g->cell_count(), g->ty};
    }
  }

  std::int64_t alloc_static(std::int64_t cells) {
    std::int64_t a = layout_.poly_static_size;
    layout_.poly_static_size += cells;
    return a;
  }

  // ------------------------------------------------------------- functions

  void analyze_function(FuncDecl& fn) {
    cur_fn_ = &fn;
    scopes_ = Scopes();
    scopes_.push();  // function scope

    std::int64_t frame_off = 2;  // [0]=saved FP, [1]=return-site id
    for (auto& p : fn.params) {
      if (fn.recursive) {
        p->storage = Storage::Frame;
        p->addr = frame_off;
        frame_off += p->cell_count();
        fn.frame_vars.push_back(p.get());
      } else {
        p->storage = Storage::PolyStatic;
        p->addr = alloc_static(p->cell_count());
      }
      scopes_.declare(p.get());
    }
    frame_off_ = frame_off;
    if (fn.ret_ty != Ty::Void) fn.retval_addr = alloc_static(1);

    check_stmt(*fn.body);

    if (fn.recursive) fn.frame_size = frame_off_;
    scopes_.pop();
    cur_fn_ = nullptr;
  }

  // ------------------------------------------------------------ statements

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::Expr:
        check_expr(*static_cast<ExprStmt&>(s).expr);
        return;
      case StmtKind::Decl: {
        auto& d = static_cast<DeclStmt&>(s);
        VarDecl& v = *d.decl;
        if (cur_fn_->recursive) {
          v.storage = Storage::Frame;
          v.addr = frame_off_;
          frame_off_ += v.cell_count();
          cur_fn_->frame_vars.push_back(&v);
        } else {
          v.storage = Storage::PolyStatic;
          v.addr = alloc_static(v.cell_count());
        }
        scopes_.declare(&v);
        if (d.init) {
          check_expr(*d.init);
          require_convertible(d.init->ty, v.ty, d.init->loc, "initializer");
        }
        return;
      }
      case StmtKind::Block: {
        scopes_.push();
        for (auto& st : static_cast<BlockStmt&>(s).stmts) check_stmt(*st);
        scopes_.pop();
        return;
      }
      case StmtKind::If: {
        auto& x = static_cast<IfStmt&>(s);
        check_cond(*x.cond);
        check_stmt(*x.then_branch);
        if (x.else_branch) check_stmt(*x.else_branch);
        return;
      }
      case StmtKind::While: {
        auto& x = static_cast<WhileStmt&>(s);
        check_cond(*x.cond);
        ++loop_depth_;
        check_stmt(*x.body);
        --loop_depth_;
        return;
      }
      case StmtKind::DoWhile: {
        auto& x = static_cast<DoWhileStmt&>(s);
        ++loop_depth_;
        check_stmt(*x.body);
        --loop_depth_;
        check_cond(*x.cond);
        return;
      }
      case StmtKind::For: {
        auto& x = static_cast<ForStmt&>(s);
        scopes_.push();
        if (x.init) check_expr(*x.init);
        if (x.cond) check_cond(*x.cond);
        if (x.step) check_expr(*x.step);
        ++loop_depth_;
        check_stmt(*x.body);
        --loop_depth_;
        scopes_.pop();
        return;
      }
      case StmtKind::Return: {
        auto& x = static_cast<ReturnStmt&>(s);
        if (cur_fn_->ret_ty == Ty::Void) {
          if (x.value) throw CompileError(x.loc, "void function cannot return a value");
        } else {
          if (!x.value)
            throw CompileError(x.loc, cat("function '", cur_fn_->name,
                                          "' must return a value"));
          check_expr(*x.value);
          require_convertible(x.value->ty, cur_fn_->ret_ty, x.loc, "return value");
        }
        return;
      }
      case StmtKind::Break:
        if (loop_depth_ == 0)
          throw CompileError(s.loc, "break outside of a loop");
        return;
      case StmtKind::Continue:
        if (loop_depth_ == 0)
          throw CompileError(s.loc, "continue outside of a loop");
        return;
      case StmtKind::Spawn: {
        // A spawned child starts a fresh process: enclosing loops belong
        // to the parent, so break/continue may not escape the spawn body.
        int saved = loop_depth_;
        loop_depth_ = 0;
        check_stmt(*static_cast<SpawnStmt&>(s).body);
        loop_depth_ = saved;
        return;
      }
      case StmtKind::Wait:
      case StmtKind::Halt:
      case StmtKind::Empty:
        return;
    }
  }

  void check_cond(Expr& e) {
    check_expr(e);
    require_numeric(e, "condition");
  }

  // ----------------------------------------------------------- expressions

  void check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.ty = Ty::Int;
        e.poly = false;
        return;
      case ExprKind::FloatLit:
        e.ty = Ty::Float;
        e.poly = false;
        return;
      case ExprKind::VarRef: {
        auto& x = static_cast<VarRefExpr&>(e);
        VarDecl* d = scopes_.lookup(x.name);
        if (!d) {
          auto g = scopes_global_.find(x.name);
          if (g == scopes_global_.end())
            throw CompileError(x.loc, cat("use of undeclared variable '", x.name, "'"));
          d = g->second;
        }
        x.decl = d;
        x.ty = d->ty;
        x.poly = d->qual == Qual::Poly;
        return;
      }
      case ExprKind::Index: {
        auto& x = static_cast<IndexExpr&>(e);
        check_expr(*x.base);
        const VarDecl* base = array_base_decl(*x.base, "subscript");
        check_expr(*x.index);
        require_int(*x.index, "array index");
        x.ty = base->ty;
        x.poly = x.base->poly || x.index->poly;
        return;
      }
      case ExprKind::ParIndex: {
        auto& x = static_cast<ParIndexExpr&>(e);
        check_expr(*x.base);
        if (!x.base->poly)
          throw CompileError(x.loc, "parallel subscript requires a poly variable");
        if (x.base->kind == ExprKind::VarRef &&
            static_cast<const VarRefExpr&>(*x.base).decl->is_array())
          throw CompileError(x.loc,
                             "parallel subscript needs an element, not a whole array");
        check_expr(*x.proc);
        require_int(*x.proc, "processor number");
        x.ty = x.base->ty;
        x.poly = true;
        return;
      }
      case ExprKind::Unary: {
        auto& x = static_cast<UnaryExpr&>(e);
        check_expr(*x.operand);
        require_numeric(*x.operand, "operand");
        switch (x.op) {
          case UnOp::Neg:
            x.ty = x.operand->ty;
            break;
          case UnOp::Not:
            x.ty = Ty::Int;
            break;
          case UnOp::BitNot:
            require_int(*x.operand, "operand of ~");
            x.ty = Ty::Int;
            break;
        }
        x.poly = x.operand->poly;
        return;
      }
      case ExprKind::Binary: {
        auto& x = static_cast<BinaryExpr&>(e);
        check_expr(*x.lhs);
        check_expr(*x.rhs);
        require_numeric(*x.lhs, "left operand");
        require_numeric(*x.rhs, "right operand");
        switch (x.op) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
          case BinOp::Div:
            x.ty = (x.lhs->ty == Ty::Float || x.rhs->ty == Ty::Float) ? Ty::Float
                                                                      : Ty::Int;
            break;
          case BinOp::Mod:
          case BinOp::BitAnd:
          case BinOp::BitOr:
          case BinOp::BitXor:
          case BinOp::Shl:
          case BinOp::Shr:
            require_int(*x.lhs, "left operand");
            require_int(*x.rhs, "right operand");
            x.ty = Ty::Int;
            break;
          default:  // comparisons and logical ops
            x.ty = Ty::Int;
            break;
        }
        x.poly = x.lhs->poly || x.rhs->poly;
        return;
      }
      case ExprKind::Assign: {
        auto& x = static_cast<AssignExpr&>(e);
        check_expr(*x.target);
        check_expr(*x.value);
        if (x.target->kind == ExprKind::VarRef &&
            static_cast<const VarRefExpr&>(*x.target).decl->is_array())
          throw CompileError(x.loc, "cannot assign to a whole array");
        require_convertible(x.value->ty, x.target->ty, x.loc, "assignment");
        if (!x.target->poly && x.value->poly)
          diags_.warn(x.loc,
                      "storing a poly value into a mono variable broadcasts a "
                      "processor-dependent value (potential race)");
        x.ty = x.target->ty;
        x.poly = x.target->poly;
        return;
      }
      case ExprKind::CompoundAssign: {
        auto& x = static_cast<CompoundAssignExpr&>(e);
        check_expr(*x.target);
        check_expr(*x.value);
        if (x.target->kind == ExprKind::VarRef &&
            static_cast<const VarRefExpr&>(*x.target).decl->is_array())
          throw CompileError(x.loc, "cannot assign to a whole array");
        require_numeric(*x.target, "compound-assignment target");
        require_numeric(*x.value, "compound-assignment value");
        switch (x.op) {
          case BinOp::Mod:
          case BinOp::BitAnd:
          case BinOp::BitOr:
          case BinOp::BitXor:
          case BinOp::Shl:
          case BinOp::Shr:
            require_int(*x.target, "compound-assignment target");
            require_int(*x.value, "compound-assignment value");
            break;
          default:
            break;
        }
        require_pure_subscripts(*x.target);
        if (!x.target->poly && x.value->poly)
          diags_.warn(x.loc,
                      "storing a poly value into a mono variable broadcasts a "
                      "processor-dependent value (potential race)");
        x.ty = x.target->ty;
        x.poly = x.target->poly;
        return;
      }
      case ExprKind::IncDec: {
        auto& x = static_cast<IncDecExpr&>(e);
        check_expr(*x.target);
        if (x.target->kind == ExprKind::VarRef &&
            static_cast<const VarRefExpr&>(*x.target).decl->is_array())
          throw CompileError(x.loc, "cannot increment a whole array");
        require_numeric(*x.target, "increment/decrement target");
        require_pure_subscripts(*x.target);
        x.ty = x.target->ty;
        x.poly = x.target->poly;
        return;
      }
      case ExprKind::Call: {
        auto& x = static_cast<CallExpr&>(e);
        FuncDecl* fn = prog_.find_func(x.callee);
        if (!fn)
          throw CompileError(x.loc, cat("call to undeclared function '", x.callee, "'"));
        if (x.args.size() != fn->params.size())
          throw CompileError(x.loc, cat("'", x.callee, "' expects ", fn->params.size(),
                                        " argument(s), got ", x.args.size()));
        for (std::size_t i = 0; i < x.args.size(); ++i) {
          check_expr(*x.args[i]);
          require_convertible(x.args[i]->ty, fn->params[i]->ty, x.args[i]->loc,
                              "argument");
        }
        x.target = fn;
        x.ty = fn->ret_ty;
        x.poly = true;  // conservatively processor-dependent
        return;
      }
      case ExprKind::Builtin: {
        auto& x = static_cast<BuiltinExpr&>(e);
        x.ty = Ty::Int;
        x.poly = x.which == Builtin::ProcId;
        return;
      }
    }
  }

  // ----------------------------------------------------------------- utils

  /// Compound assignment / inc-dec evaluate the target's subscript twice
  /// (once for the load, once for the store), so those subexpressions must
  /// be free of side effects.
  void require_pure_subscripts(const Expr& target) {
    switch (target.kind) {
      case ExprKind::VarRef:
        return;
      case ExprKind::Index:
        require_pure(*static_cast<const IndexExpr&>(target).index);
        return;
      case ExprKind::ParIndex: {
        const auto& x = static_cast<const ParIndexExpr&>(target);
        require_pure_subscripts(*x.base);
        require_pure(*x.proc);
        return;
      }
      default:
        throw CompileError(target.loc, "not an assignable target");
    }
  }

  void require_pure(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Call:
      case ExprKind::Assign:
      case ExprKind::CompoundAssign:
      case ExprKind::IncDec:
        throw CompileError(
            e.loc,
            "subscripts of a compound-assignment target must be side-effect "
            "free (they are evaluated twice)");
      case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        require_pure(*x.base);
        require_pure(*x.index);
        return;
      }
      case ExprKind::ParIndex: {
        const auto& x = static_cast<const ParIndexExpr&>(e);
        require_pure(*x.base);
        require_pure(*x.proc);
        return;
      }
      case ExprKind::Unary:
        require_pure(*static_cast<const UnaryExpr&>(e).operand);
        return;
      case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        require_pure(*x.lhs);
        require_pure(*x.rhs);
        return;
      }
      default:
        return;
    }
  }

  const VarDecl* array_base_decl(const Expr& base, const char* what) {
    if (base.kind != ExprKind::VarRef)
      throw CompileError(base.loc, cat("can only ", what, " a named array"));
    const VarDecl* d = static_cast<const VarRefExpr&>(base).decl;
    if (!d->is_array())
      throw CompileError(base.loc, cat("'", d->name, "' is not an array"));
    return d;
  }

  void require_numeric(const Expr& e, const char* what) {
    if (e.ty != Ty::Int && e.ty != Ty::Float)
      throw CompileError(e.loc, cat(what, " must be int or float"));
    if (e.kind == ExprKind::VarRef &&
        static_cast<const VarRefExpr&>(e).decl->is_array())
      throw CompileError(e.loc, cat(what, " cannot be a whole array"));
  }

  void require_int(const Expr& e, const char* what) {
    if (e.ty != Ty::Int) throw CompileError(e.loc, cat(what, " must be int"));
  }

  void require_convertible(Ty from, Ty to, SourceLoc loc, const char* what) {
    bool ok = (from == to) || (from == Ty::Int && to == Ty::Float) ||
              (from == Ty::Float && to == Ty::Int);
    if (!ok)
      throw CompileError(loc, cat("cannot convert ", ty_name(from), " to ",
                                  ty_name(to), " in ", what));
  }

  Program& prog_;
  Diagnostics& diags_;
  Layout layout_;
  Scopes scopes_;
  std::unordered_map<std::string, VarDecl*> scopes_global_;
  FuncDecl* cur_fn_ = nullptr;
  std::int64_t frame_off_ = 0;
  int loop_depth_ = 0;
};

}  // namespace

Layout analyze(Program& program, Diagnostics& diags) {
  return Sema(program, diags).run();
}

}  // namespace msc::frontend
