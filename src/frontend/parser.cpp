#include "msc/frontend/parser.hpp"

#include "msc/frontend/lexer.hpp"
#include "msc/support/str.hpp"

namespace msc::frontend {

Parser::Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= toks_.size()) i = toks_.size() - 1;  // Eof sentinel
  return toks_[i];
}

Token Parser::advance() {
  Token t = cur();
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

Token Parser::expect(Tok kind, const char* context) {
  if (!check(kind))
    fail(cat("expected ", tok_name(kind), " ", context, ", found ", tok_name(cur().kind)));
  return advance();
}

void Parser::fail(const std::string& message) const {
  throw CompileError(cur().loc, message);
}

bool Parser::at_type_start() const {
  switch (cur().kind) {
    case Tok::KwInt:
    case Tok::KwFloat:
    case Tok::KwVoid:
    case Tok::KwMono:
    case Tok::KwPoly:
      return true;
    default:
      return false;
  }
}

Ty Parser::parse_type() {
  if (match(Tok::KwInt)) return Ty::Int;
  if (match(Tok::KwFloat)) return Ty::Float;
  if (match(Tok::KwVoid)) return Ty::Void;
  fail(cat("expected type, found ", tok_name(cur().kind)));
}

// ------------------------------------------------------------ declarations

std::unique_ptr<VarDecl> Parser::parse_var_decl_tail(Qual qual, Ty ty, Token name_tok) {
  auto decl = std::make_unique<VarDecl>();
  decl->name = name_tok.text;
  decl->qual = qual;
  decl->ty = ty;
  decl->loc = name_tok.loc;
  if (match(Tok::LBracket)) {
    Token size = expect(Tok::IntLit, "as array size");
    if (size.int_val <= 0) throw CompileError(size.loc, "array size must be positive");
    decl->array_size = size.int_val;
    expect(Tok::RBracket, "after array size");
  }
  return decl;
}

void Parser::parse_top_decl(Program& prog) {
  Qual qual = Qual::Mono;  // top-level default: shared, like a C global
  bool qual_explicit = false;
  if (match(Tok::KwMono)) {
    qual = Qual::Mono;
    qual_explicit = true;
  } else if (match(Tok::KwPoly)) {
    qual = Qual::Poly;
    qual_explicit = true;
  }
  Ty ty = parse_type();
  Token name = expect(Tok::Ident, "in declaration");
  if (check(Tok::LParen)) {
    if (qual_explicit)
      throw CompileError(name.loc, "functions cannot have a mono/poly qualifier");
    prog.funcs.push_back(parse_func_tail(ty, name));
    return;
  }
  if (ty == Ty::Void) throw CompileError(name.loc, "variables cannot have type void");
  auto decl = parse_var_decl_tail(qual, ty, name);
  expect(Tok::Semi, "after global declaration");
  prog.globals.push_back(std::move(decl));
}

std::unique_ptr<FuncDecl> Parser::parse_func_tail(Ty ret_ty, Token name_tok) {
  auto fn = std::make_unique<FuncDecl>();
  fn->name = name_tok.text;
  fn->ret_ty = ret_ty;
  fn->loc = name_tok.loc;
  expect(Tok::LParen, "after function name");
  if (!check(Tok::RParen)) {
    do {
      if (match(Tok::KwVoid) && check(Tok::RParen)) break;  // f(void)
      Qual q = Qual::Poly;
      if (match(Tok::KwPoly)) q = Qual::Poly;
      else if (check(Tok::KwMono))
        throw CompileError(cur().loc, "parameters must be poly");
      Ty ty = parse_type();
      Token pname = expect(Tok::Ident, "as parameter name");
      auto p = std::make_unique<VarDecl>();
      p->name = pname.text;
      p->qual = q;
      p->ty = ty;
      p->loc = pname.loc;
      fn->params.push_back(std::move(p));
    } while (match(Tok::Comma));
  }
  expect(Tok::RParen, "after parameters");
  fn->body = parse_block();
  return fn;
}

std::unique_ptr<Program> Parser::parse_program() {
  auto prog = std::make_unique<Program>();
  while (!check(Tok::Eof)) parse_top_decl(*prog);
  return prog;
}

// -------------------------------------------------------------- statements

std::unique_ptr<BlockStmt> Parser::parse_block() {
  Token open = expect(Tok::LBrace, "to open block");
  auto blk = std::make_unique<BlockStmt>(open.loc);
  while (!check(Tok::RBrace) && !check(Tok::Eof)) blk->stmts.push_back(parse_stmt());
  expect(Tok::RBrace, "to close block");
  return blk;
}

StmtPtr Parser::parse_stmt() {
  SourceLoc loc = cur().loc;
  switch (cur().kind) {
    case Tok::LBrace:
      return parse_block();
    case Tok::KwIf:
      return parse_if();
    case Tok::KwWhile:
      return parse_while();
    case Tok::KwDo:
      return parse_do_while();
    case Tok::KwFor:
      return parse_for();
    case Tok::KwReturn: {
      advance();
      ExprPtr value;
      if (!check(Tok::Semi)) value = parse_expr();
      expect(Tok::Semi, "after return");
      return std::make_unique<ReturnStmt>(loc, std::move(value));
    }
    case Tok::KwBreak:
      advance();
      expect(Tok::Semi, "after break");
      return std::make_unique<BreakStmt>(loc);
    case Tok::KwContinue:
      advance();
      expect(Tok::Semi, "after continue");
      return std::make_unique<ContinueStmt>(loc);
    case Tok::KwWait:
      advance();
      expect(Tok::Semi, "after wait");
      return std::make_unique<WaitStmt>(loc);
    case Tok::KwHalt:
      advance();
      expect(Tok::Semi, "after halt");
      return std::make_unique<HaltStmt>(loc);
    case Tok::KwSpawn: {
      advance();
      StmtPtr body = parse_stmt();
      return std::make_unique<SpawnStmt>(loc, std::move(body));
    }
    case Tok::Semi:
      advance();
      return std::make_unique<EmptyStmt>(loc);
    default:
      break;
  }
  if (at_type_start()) {
    Qual qual = Qual::Poly;  // locals default to private
    if (match(Tok::KwPoly)) qual = Qual::Poly;
    else if (check(Tok::KwMono))
      throw CompileError(loc, "mono variables must be declared at global scope");
    Ty ty = parse_type();
    if (ty == Ty::Void) throw CompileError(loc, "variables cannot have type void");
    Token name = expect(Tok::Ident, "in declaration");
    auto decl = parse_var_decl_tail(qual, ty, name);
    ExprPtr init;
    if (match(Tok::Assign)) {
      if (decl->is_array()) throw CompileError(loc, "array initializers are not supported");
      init = parse_assignment();
    }
    expect(Tok::Semi, "after declaration");
    return std::make_unique<DeclStmt>(loc, std::move(decl), std::move(init));
  }
  ExprPtr e = parse_expr();
  expect(Tok::Semi, "after expression statement");
  return std::make_unique<ExprStmt>(loc, std::move(e));
}

StmtPtr Parser::parse_if() {
  Token kw = expect(Tok::KwIf, "");
  expect(Tok::LParen, "after if");
  ExprPtr cond = parse_expr();
  expect(Tok::RParen, "after if condition");
  StmtPtr then_branch = parse_stmt();
  StmtPtr else_branch;
  if (match(Tok::KwElse)) else_branch = parse_stmt();
  return std::make_unique<IfStmt>(kw.loc, std::move(cond), std::move(then_branch),
                                  std::move(else_branch));
}

StmtPtr Parser::parse_while() {
  Token kw = expect(Tok::KwWhile, "");
  expect(Tok::LParen, "after while");
  ExprPtr cond = parse_expr();
  expect(Tok::RParen, "after while condition");
  StmtPtr body = parse_stmt();
  return std::make_unique<WhileStmt>(kw.loc, std::move(cond), std::move(body));
}

StmtPtr Parser::parse_do_while() {
  Token kw = expect(Tok::KwDo, "");
  StmtPtr body = parse_stmt();
  expect(Tok::KwWhile, "after do body");
  expect(Tok::LParen, "after do-while");
  ExprPtr cond = parse_expr();
  expect(Tok::RParen, "after do-while condition");
  expect(Tok::Semi, "after do-while");
  return std::make_unique<DoWhileStmt>(kw.loc, std::move(body), std::move(cond));
}

StmtPtr Parser::parse_for() {
  Token kw = expect(Tok::KwFor, "");
  expect(Tok::LParen, "after for");
  ExprPtr init, cond, step;
  if (!check(Tok::Semi)) init = parse_expr();
  expect(Tok::Semi, "after for-init");
  if (!check(Tok::Semi)) cond = parse_expr();
  expect(Tok::Semi, "after for-condition");
  if (!check(Tok::RParen)) step = parse_expr();
  expect(Tok::RParen, "after for header");
  StmtPtr body = parse_stmt();
  return std::make_unique<ForStmt>(kw.loc, std::move(init), std::move(cond),
                                   std::move(step), std::move(body));
}

// ------------------------------------------------------------- expressions

ExprPtr Parser::parse_expr() { return parse_assignment(); }

namespace {
bool is_lvalue(const Expr& e) {
  return e.kind == ExprKind::VarRef || e.kind == ExprKind::Index ||
         e.kind == ExprKind::ParIndex;
}

/// C-like precedence table; higher binds tighter.
int bin_prec(Tok t) {
  switch (t) {
    case Tok::PipePipe: return 1;
    case Tok::AmpAmp: return 2;
    case Tok::Pipe: return 3;
    case Tok::Caret: return 4;
    case Tok::Amp: return 5;
    case Tok::Eq:
    case Tok::Ne: return 6;
    case Tok::Lt:
    case Tok::Le:
    case Tok::Gt:
    case Tok::Ge: return 7;
    case Tok::Shl:
    case Tok::Shr: return 8;
    case Tok::Plus:
    case Tok::Minus: return 9;
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent: return 10;
    default: return 0;
  }
}

BinOp bin_op(Tok t) {
  switch (t) {
    case Tok::PipePipe: return BinOp::LOr;
    case Tok::AmpAmp: return BinOp::LAnd;
    case Tok::Pipe: return BinOp::BitOr;
    case Tok::Caret: return BinOp::BitXor;
    case Tok::Amp: return BinOp::BitAnd;
    case Tok::Eq: return BinOp::Eq;
    case Tok::Ne: return BinOp::Ne;
    case Tok::Lt: return BinOp::Lt;
    case Tok::Le: return BinOp::Le;
    case Tok::Gt: return BinOp::Gt;
    case Tok::Ge: return BinOp::Ge;
    case Tok::Shl: return BinOp::Shl;
    case Tok::Shr: return BinOp::Shr;
    case Tok::Plus: return BinOp::Add;
    case Tok::Minus: return BinOp::Sub;
    case Tok::Star: return BinOp::Mul;
    case Tok::Slash: return BinOp::Div;
    case Tok::Percent: return BinOp::Mod;
    default: return BinOp::Add;
  }
}
}  // namespace

namespace {
bool compound_op(Tok t, BinOp* out) {
  switch (t) {
    case Tok::PlusEq: *out = BinOp::Add; return true;
    case Tok::MinusEq: *out = BinOp::Sub; return true;
    case Tok::StarEq: *out = BinOp::Mul; return true;
    case Tok::SlashEq: *out = BinOp::Div; return true;
    case Tok::PercentEq: *out = BinOp::Mod; return true;
    case Tok::AmpEq: *out = BinOp::BitAnd; return true;
    case Tok::PipeEq: *out = BinOp::BitOr; return true;
    case Tok::CaretEq: *out = BinOp::BitXor; return true;
    case Tok::ShlEq: *out = BinOp::Shl; return true;
    case Tok::ShrEq: *out = BinOp::Shr; return true;
    default: return false;
  }
}
}  // namespace

ExprPtr Parser::parse_assignment() {
  ExprPtr lhs = parse_binary(1);
  if (check(Tok::Assign)) {
    Token eq = advance();
    if (!is_lvalue(*lhs))
      throw CompileError(eq.loc, "left side of assignment is not assignable");
    ExprPtr rhs = parse_assignment();  // right-associative
    return std::make_unique<AssignExpr>(eq.loc, std::move(lhs), std::move(rhs));
  }
  BinOp op;
  if (compound_op(cur().kind, &op)) {
    Token eq = advance();
    if (!is_lvalue(*lhs))
      throw CompileError(eq.loc, "left side of assignment is not assignable");
    ExprPtr rhs = parse_assignment();
    return std::make_unique<CompoundAssignExpr>(eq.loc, op, std::move(lhs),
                                                std::move(rhs));
  }
  return lhs;
}

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    int prec = bin_prec(cur().kind);
    if (prec < min_prec || prec == 0) break;
    Token op = advance();
    ExprPtr rhs = parse_binary(prec + 1);  // all binary ops left-associative
    lhs = std::make_unique<BinaryExpr>(op.loc, bin_op(op.kind), std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

ExprPtr Parser::parse_unary() {
  SourceLoc loc = cur().loc;
  if (match(Tok::PlusPlus)) {
    ExprPtr t = parse_unary();
    if (!is_lvalue(*t)) throw CompileError(loc, "'++' needs an assignable operand");
    return std::make_unique<IncDecExpr>(loc, true, true, std::move(t));
  }
  if (match(Tok::MinusMinus)) {
    ExprPtr t = parse_unary();
    if (!is_lvalue(*t)) throw CompileError(loc, "'--' needs an assignable operand");
    return std::make_unique<IncDecExpr>(loc, false, true, std::move(t));
  }
  if (match(Tok::Minus))
    return std::make_unique<UnaryExpr>(loc, UnOp::Neg, parse_unary());
  if (match(Tok::Bang))
    return std::make_unique<UnaryExpr>(loc, UnOp::Not, parse_unary());
  if (match(Tok::Tilde))
    return std::make_unique<UnaryExpr>(loc, UnOp::BitNot, parse_unary());
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    // Parallel subscript a[[p]] — two adjacent '[' tokens.
    if (check(Tok::LBracket) && peek(1).kind == Tok::LBracket) {
      Token open = advance();
      advance();
      ExprPtr proc = parse_expr();
      expect(Tok::RBracket, "to close parallel subscript");
      expect(Tok::RBracket, "to close parallel subscript");
      e = std::make_unique<ParIndexExpr>(open.loc, std::move(e), std::move(proc));
      continue;
    }
    if (check(Tok::LBracket)) {
      Token open = advance();
      ExprPtr idx = parse_expr();
      expect(Tok::RBracket, "to close subscript");
      e = std::make_unique<IndexExpr>(open.loc, std::move(e), std::move(idx));
      continue;
    }
    if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
      Token op = advance();
      if (!is_lvalue(*e))
        throw CompileError(op.loc, "postfix increment needs an assignable operand");
      e = std::make_unique<IncDecExpr>(op.loc, op.kind == Tok::PlusPlus, false,
                                       std::move(e));
      continue;
    }
    break;
  }
  return e;
}

ExprPtr Parser::parse_primary() {
  SourceLoc loc = cur().loc;
  switch (cur().kind) {
    case Tok::IntLit: {
      Token t = advance();
      return std::make_unique<IntLitExpr>(loc, t.int_val);
    }
    case Tok::FloatLit: {
      Token t = advance();
      return std::make_unique<FloatLitExpr>(loc, t.float_val);
    }
    case Tok::LParen: {
      advance();
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "to close parenthesized expression");
      return e;
    }
    case Tok::Ident: {
      Token name = advance();
      if (check(Tok::LParen)) {
        advance();
        std::vector<ExprPtr> args;
        if (!check(Tok::RParen)) {
          do {
            args.push_back(parse_assignment());
          } while (match(Tok::Comma));
        }
        expect(Tok::RParen, "to close call");
        if (name.text == "procid" && args.empty())
          return std::make_unique<BuiltinExpr>(loc, Builtin::ProcId);
        if (name.text == "nprocs" && args.empty())
          return std::make_unique<BuiltinExpr>(loc, Builtin::NProcs);
        return std::make_unique<CallExpr>(loc, name.text, std::move(args));
      }
      return std::make_unique<VarRefExpr>(loc, name.text);
    }
    default:
      fail(cat("expected expression, found ", tok_name(cur().kind)));
  }
}

std::unique_ptr<Program> parse_mimdc(const std::string& source) {
  Lexer lex(source);
  Parser parser(lex.lex_all());
  return parser.parse_program();
}

}  // namespace msc::frontend
