#ifndef MSC_FRONTEND_AST_HPP
#define MSC_FRONTEND_AST_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "msc/support/diag.hpp"

namespace msc::frontend {

/// MIMDC scalar types (§4.1: "Data values can be either int or float").
enum class Ty : std::uint8_t { Void, Int, Float };

/// Storage class: mono = shared/replicated, poly = private per processor.
enum class Qual : std::uint8_t { Mono, Poly };

const char* ty_name(Ty t);
const char* qual_name(Qual q);

// --------------------------------------------------------------- variables

/// Where sema placed a variable.
enum class Storage : std::uint8_t {
  MonoStatic,  ///< cell(s) in the shared mono segment
  PolyStatic,  ///< cell(s) at a fixed address in every PE's local memory
  Frame,       ///< frame-pointer-relative slot (locals of recursive functions)
};

struct VarDecl {
  std::string name;
  Qual qual = Qual::Poly;
  Ty ty = Ty::Int;
  /// 0 for scalars; element count for 1-D arrays.
  std::int64_t array_size = 0;
  SourceLoc loc;

  // Filled by sema:
  Storage storage = Storage::PolyStatic;
  std::int64_t addr = -1;  ///< segment address (static) or frame offset

  bool is_array() const { return array_size > 0; }
  std::int64_t cell_count() const { return is_array() ? array_size : 1; }
};

// ------------------------------------------------------------- expressions

enum class ExprKind : std::uint8_t {
  IntLit,
  FloatLit,
  VarRef,
  Index,     ///< a[e]
  ParIndex,  ///< a[[p]] or a[e][[p]] — fetch/store on processor p (§4.1)
  Unary,
  Binary,
  Assign,
  CompoundAssign,  ///< a ⊕= b, desugared during CFG construction
  IncDec,          ///< ++a / a++ / --a / a--
  Call,
  Builtin,
};

enum class UnOp : std::uint8_t { Neg, Not, BitNot };
enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  LAnd, LOr,  ///< non-short-circuit (documented deviation; keeps blocks maximal)
  BitAnd, BitOr, BitXor, Shl, Shr,
};
enum class Builtin : std::uint8_t { ProcId, NProcs };

const char* unop_name(UnOp op);
const char* binop_name(BinOp op);

struct FuncDecl;

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  // Filled by sema:
  Ty ty = Ty::Void;
  bool poly = false;  ///< value differs across PEs (drives divergence)

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Expr() = default;
};
using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  std::int64_t value;
  IntLitExpr(SourceLoc l, std::int64_t v) : Expr(ExprKind::IntLit, l), value(v) {}
};

struct FloatLitExpr final : Expr {
  double value;
  FloatLitExpr(SourceLoc l, double v) : Expr(ExprKind::FloatLit, l), value(v) {}
};

struct VarRefExpr final : Expr {
  std::string name;
  const VarDecl* decl = nullptr;  // resolved by sema
  VarRefExpr(SourceLoc l, std::string n) : Expr(ExprKind::VarRef, l), name(std::move(n)) {}
};

struct IndexExpr final : Expr {
  ExprPtr base;  // VarRef to an array
  ExprPtr index;
  IndexExpr(SourceLoc l, ExprPtr b, ExprPtr i)
      : Expr(ExprKind::Index, l), base(std::move(b)), index(std::move(i)) {}
};

struct ParIndexExpr final : Expr {
  ExprPtr base;  // VarRef or Index over a poly variable
  ExprPtr proc;  // processor number expression
  ParIndexExpr(SourceLoc l, ExprPtr b, ExprPtr p)
      : Expr(ExprKind::ParIndex, l), base(std::move(b)), proc(std::move(p)) {}
};

struct UnaryExpr final : Expr {
  UnOp op;
  ExprPtr operand;
  UnaryExpr(SourceLoc l, UnOp o, ExprPtr e)
      : Expr(ExprKind::Unary, l), op(o), operand(std::move(e)) {}
};

struct BinaryExpr final : Expr {
  BinOp op;
  ExprPtr lhs, rhs;
  BinaryExpr(SourceLoc l, BinOp o, ExprPtr a, ExprPtr b)
      : Expr(ExprKind::Binary, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
};

struct AssignExpr final : Expr {
  ExprPtr target;  // VarRef, Index, or ParIndex
  ExprPtr value;
  AssignExpr(SourceLoc l, ExprPtr t, ExprPtr v)
      : Expr(ExprKind::Assign, l), target(std::move(t)), value(std::move(v)) {}
};

struct CompoundAssignExpr final : Expr {
  BinOp op;        ///< the underlying binary operation
  ExprPtr target;  ///< VarRef, Index, or ParIndex with pure subscripts
  ExprPtr value;
  CompoundAssignExpr(SourceLoc l, BinOp o, ExprPtr t, ExprPtr v)
      : Expr(ExprKind::CompoundAssign, l), op(o), target(std::move(t)),
        value(std::move(v)) {}
};

struct IncDecExpr final : Expr {
  bool is_increment;
  bool is_prefix;  ///< prefix yields the new value, postfix the old
  ExprPtr target;
  IncDecExpr(SourceLoc l, bool inc, bool prefix, ExprPtr t)
      : Expr(ExprKind::IncDec, l), is_increment(inc), is_prefix(prefix),
        target(std::move(t)) {}
};

struct CallExpr final : Expr {
  std::string callee;
  std::vector<ExprPtr> args;
  FuncDecl* target = nullptr;  // resolved by sema
  CallExpr(SourceLoc l, std::string c, std::vector<ExprPtr> a)
      : Expr(ExprKind::Call, l), callee(std::move(c)), args(std::move(a)) {}
};

struct BuiltinExpr final : Expr {
  Builtin which;
  BuiltinExpr(SourceLoc l, Builtin w) : Expr(ExprKind::Builtin, l), which(w) {}
};

// -------------------------------------------------------------- statements

enum class StmtKind : std::uint8_t {
  Expr,
  Decl,
  Block,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Wait,   ///< barrier synchronization (§2.6)
  Halt,   ///< release this PE back to the free pool (§3.2.5)
  Spawn,  ///< restricted dynamic process creation (§3.2.5)
  Empty,
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;
  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Stmt() = default;
};
using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt final : Stmt {
  ExprPtr expr;
  ExprStmt(SourceLoc l, ExprPtr e) : Stmt(StmtKind::Expr, l), expr(std::move(e)) {}
};

struct DeclStmt final : Stmt {
  std::unique_ptr<VarDecl> decl;
  ExprPtr init;  // may be null
  DeclStmt(SourceLoc l, std::unique_ptr<VarDecl> d, ExprPtr i)
      : Stmt(StmtKind::Decl, l), decl(std::move(d)), init(std::move(i)) {}
};

struct BlockStmt final : Stmt {
  std::vector<StmtPtr> stmts;
  explicit BlockStmt(SourceLoc l) : Stmt(StmtKind::Block, l) {}
};

struct IfStmt final : Stmt {
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  IfStmt(SourceLoc l, ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(StmtKind::If, l), cond(std::move(c)), then_branch(std::move(t)),
        else_branch(std::move(e)) {}
};

struct WhileStmt final : Stmt {
  ExprPtr cond;
  StmtPtr body;
  WhileStmt(SourceLoc l, ExprPtr c, StmtPtr b)
      : Stmt(StmtKind::While, l), cond(std::move(c)), body(std::move(b)) {}
};

struct DoWhileStmt final : Stmt {
  StmtPtr body;
  ExprPtr cond;
  DoWhileStmt(SourceLoc l, StmtPtr b, ExprPtr c)
      : Stmt(StmtKind::DoWhile, l), body(std::move(b)), cond(std::move(c)) {}
};

struct ForStmt final : Stmt {
  ExprPtr init, cond, step;  // each may be null
  StmtPtr body;
  ForStmt(SourceLoc l, ExprPtr i, ExprPtr c, ExprPtr s, StmtPtr b)
      : Stmt(StmtKind::For, l), init(std::move(i)), cond(std::move(c)),
        step(std::move(s)), body(std::move(b)) {}
};

struct ReturnStmt final : Stmt {
  ExprPtr value;  // may be null (void)
  ReturnStmt(SourceLoc l, ExprPtr v) : Stmt(StmtKind::Return, l), value(std::move(v)) {}
};

struct BreakStmt final : Stmt {
  explicit BreakStmt(SourceLoc l) : Stmt(StmtKind::Break, l) {}
};

struct ContinueStmt final : Stmt {
  explicit ContinueStmt(SourceLoc l) : Stmt(StmtKind::Continue, l) {}
};

struct WaitStmt final : Stmt {
  explicit WaitStmt(SourceLoc l) : Stmt(StmtKind::Wait, l) {}
};

struct HaltStmt final : Stmt {
  explicit HaltStmt(SourceLoc l) : Stmt(StmtKind::Halt, l) {}
};

/// `spawn stmt` — newly created processes execute `stmt` then halt; the
/// original processes skip it. Matches the paper's spawn(x) encoding where
/// both exits of the pseudo-branch are always taken.
struct SpawnStmt final : Stmt {
  StmtPtr body;
  SpawnStmt(SourceLoc l, StmtPtr b) : Stmt(StmtKind::Spawn, l), body(std::move(b)) {}
};

struct EmptyStmt final : Stmt {
  explicit EmptyStmt(SourceLoc l) : Stmt(StmtKind::Empty, l) {}
};

// --------------------------------------------------------------- functions

struct FuncDecl {
  std::string name;
  Ty ret_ty = Ty::Void;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<BlockStmt> body;
  SourceLoc loc;

  // Filled by sema:
  bool recursive = false;       ///< member of a call-graph cycle (§2.2)
  std::int64_t frame_size = 0;  ///< cells per activation, recursive funcs only
  std::int64_t retval_addr = -1;  ///< static poly cell holding the return value
  std::vector<VarDecl*> frame_vars;  ///< params+locals in frame-offset order
};

struct Program {
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FuncDecl>> funcs;

  FuncDecl* find_func(const std::string& name) const;
  VarDecl* find_global(const std::string& name) const;
};

/// S-expression dump of an expression/statement tree (tests, debugging).
std::string dump(const Expr& e);
std::string dump(const Stmt& s);

}  // namespace msc::frontend

#endif  // MSC_FRONTEND_AST_HPP
