#ifndef MSC_FRONTEND_TOKEN_HPP
#define MSC_FRONTEND_TOKEN_HPP

#include <cstdint>
#include <string>

#include "msc/support/diag.hpp"

namespace msc::frontend {

/// MIMDC token kinds. MIMDC is the paper's parallel C dialect (§4.1):
/// `int`/`float` scalars, `mono` (shared) / `poly` (private) storage,
/// barrier `wait`, and the restricted process-creation forms `spawn` and
/// `halt` from §3.2.5.
enum class Tok : std::uint8_t {
  // literals / identifiers
  IntLit,
  FloatLit,
  Ident,
  // keywords
  KwInt,
  KwFloat,
  KwVoid,
  KwMono,
  KwPoly,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwWait,
  KwSpawn,
  KwHalt,
  KwBreak,
  KwContinue,
  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  // operators
  Assign,
  PlusEq,
  MinusEq,
  StarEq,
  SlashEq,
  PercentEq,
  AmpEq,
  PipeEq,
  CaretEq,
  ShlEq,
  ShrEq,
  PlusPlus,
  MinusMinus,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,
  Bang,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // sentinel
  Eof,
};

const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  std::string text;       // identifier spelling / literal spelling
  std::int64_t int_val = 0;
  double float_val = 0.0;
};

}  // namespace msc::frontend

#endif  // MSC_FRONTEND_TOKEN_HPP
