#ifndef MSC_FRONTEND_LEXER_HPP
#define MSC_FRONTEND_LEXER_HPP

#include <string>
#include <vector>

#include "msc/frontend/token.hpp"

namespace msc::frontend {

/// Hand-written MIMDC lexer (replaces the paper's PCCTS-generated one).
/// Supports `//` and `/* */` comments. Brackets are always lexed as single
/// characters; the parser recognizes the parallel-subscript form `[[e]]`
/// by looking at adjacent bracket tokens, so `a[b[1]]` still lexes cleanly.
class Lexer {
 public:
  explicit Lexer(std::string source);

  /// Tokenize the whole input; throws CompileError on malformed input.
  std::vector<Token> lex_all();

 private:
  Token next();
  char peek(std::size_t ahead = 0) const;
  char advance();
  bool at_end() const;
  void skip_ws_and_comments();
  Token make(Tok kind, SourceLoc loc, std::string text = {});
  Token lex_number(SourceLoc loc);
  Token lex_ident(SourceLoc loc);

  std::string src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace msc::frontend

#endif  // MSC_FRONTEND_LEXER_HPP
