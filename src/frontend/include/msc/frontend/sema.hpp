#ifndef MSC_FRONTEND_SEMA_HPP
#define MSC_FRONTEND_SEMA_HPP

#include <cstdint>
#include <map>
#include <string>

#include "msc/frontend/ast.hpp"
#include "msc/support/diag.hpp"

namespace msc::frontend {

/// Memory layout produced by sema.
///
/// Each PE's local memory is laid out as:
///   [0]              main's per-PE return value
///   [1]              FP — frame pointer (recursive calls only)
///   [2]              SP — frame-stack pointer (recursive calls only)
///   [3 ..)           poly statics: poly globals, then locals/params/retval
///                    cells of non-recursive functions (activations of a
///                    non-recursive function are temporally disjoint within
///                    one PE, so static allocation is safe)
///   [frame_stack_base ..)  activation frames of recursive functions; each
///                    frame is [saved FP, return-site id, params…, locals…]
///                    (the paper's §2.2 return-site multiway branch keys on
///                    the frame's return-site id cell)
///
/// The mono (shared) segment is a separate address space.
struct Layout {
  static constexpr std::int64_t kResultAddr = 0;
  static constexpr std::int64_t kFpAddr = 1;
  static constexpr std::int64_t kSpAddr = 2;
  static constexpr std::int64_t kFirstStatic = 3;

  std::int64_t poly_static_size = kFirstStatic;  ///< cells before frame stack
  std::int64_t frame_stack_base = kFirstStatic;
  std::int64_t mono_size = 0;

  struct Slot {
    Storage storage;
    std::int64_t addr;
    std::int64_t size;
    Ty ty;
  };
  /// Global variables by name; lets tests and harnesses poke/peek memory.
  std::map<std::string, Slot> globals;

  const Slot* find(const std::string& name) const {
    auto it = globals.find(name);
    return it == globals.end() ? nullptr : &it->second;
  }
};

/// Run semantic analysis: resolves names, checks types and mono/poly rules,
/// detects recursion via call-graph SCCs (functions in cycles get frame-
/// based locals per DESIGN.md), and assigns all addresses. Mutates the AST
/// annotations in place. Throws CompileError on the first hard error;
/// non-fatal findings (e.g. poly-to-mono broadcast races) land in `diags`.
Layout analyze(Program& program, Diagnostics& diags);

}  // namespace msc::frontend

#endif  // MSC_FRONTEND_SEMA_HPP
