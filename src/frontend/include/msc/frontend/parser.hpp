#ifndef MSC_FRONTEND_PARSER_HPP
#define MSC_FRONTEND_PARSER_HPP

#include <memory>
#include <string>
#include <vector>

#include "msc/frontend/ast.hpp"
#include "msc/frontend/token.hpp"

namespace msc::frontend {

/// Recursive-descent MIMDC parser. Throws CompileError on syntax errors.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  /// Parse a full translation unit.
  std::unique_ptr<Program> parse_program();

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& cur() const { return peek(0); }
  Token advance();
  bool check(Tok kind) const { return cur().kind == kind; }
  bool match(Tok kind);
  Token expect(Tok kind, const char* context);
  [[noreturn]] void fail(const std::string& message) const;

  bool at_type_start() const;
  Ty parse_type();

  std::unique_ptr<VarDecl> parse_var_decl_tail(Qual qual, Ty ty, Token name_tok);
  void parse_top_decl(Program& prog);
  std::unique_ptr<FuncDecl> parse_func_tail(Ty ret_ty, Token name_tok);

  StmtPtr parse_stmt();
  std::unique_ptr<BlockStmt> parse_block();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_do_while();
  StmtPtr parse_for();

  ExprPtr parse_expr();
  ExprPtr parse_assignment();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

/// Convenience: lex + parse a source string.
std::unique_ptr<Program> parse_mimdc(const std::string& source);

}  // namespace msc::frontend

#endif  // MSC_FRONTEND_PARSER_HPP
