#include "msc/frontend/ast.hpp"

#include <sstream>

#include "msc/support/str.hpp"

namespace msc::frontend {

const char* ty_name(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::Int: return "int";
    case Ty::Float: return "float";
  }
  return "?";
}

const char* qual_name(Qual q) { return q == Qual::Mono ? "mono" : "poly"; }

const char* unop_name(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::Not: return "!";
    case UnOp::BitNot: return "~";
  }
  return "?";
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
  }
  return "?";
}

FuncDecl* Program::find_func(const std::string& name) const {
  for (const auto& f : funcs)
    if (f->name == name) return f.get();
  return nullptr;
}

VarDecl* Program::find_global(const std::string& name) const {
  for (const auto& g : globals)
    if (g->name == name) return g.get();
  return nullptr;
}

std::string dump(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return std::to_string(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::FloatLit:
      return fmt_double(static_cast<const FloatLitExpr&>(e).value, 3);
    case ExprKind::VarRef:
      return static_cast<const VarRefExpr&>(e).name;
    case ExprKind::Index: {
      const auto& x = static_cast<const IndexExpr&>(e);
      return cat("(index ", dump(*x.base), " ", dump(*x.index), ")");
    }
    case ExprKind::ParIndex: {
      const auto& x = static_cast<const ParIndexExpr&>(e);
      return cat("(par ", dump(*x.base), " ", dump(*x.proc), ")");
    }
    case ExprKind::Unary: {
      const auto& x = static_cast<const UnaryExpr&>(e);
      return cat("(", unop_name(x.op), " ", dump(*x.operand), ")");
    }
    case ExprKind::Binary: {
      const auto& x = static_cast<const BinaryExpr&>(e);
      return cat("(", binop_name(x.op), " ", dump(*x.lhs), " ", dump(*x.rhs), ")");
    }
    case ExprKind::Assign: {
      const auto& x = static_cast<const AssignExpr&>(e);
      return cat("(= ", dump(*x.target), " ", dump(*x.value), ")");
    }
    case ExprKind::CompoundAssign: {
      const auto& x = static_cast<const CompoundAssignExpr&>(e);
      return cat("(", binop_name(x.op), "= ", dump(*x.target), " ",
                 dump(*x.value), ")");
    }
    case ExprKind::IncDec: {
      const auto& x = static_cast<const IncDecExpr&>(e);
      const char* op = x.is_increment ? "++" : "--";
      if (x.is_prefix) return cat("(", op, "pre ", dump(*x.target), ")");
      return cat("(", op, "post ", dump(*x.target), ")");
    }
    case ExprKind::Call: {
      const auto& x = static_cast<const CallExpr&>(e);
      std::string s = cat("(call ", x.callee);
      for (const auto& a : x.args) s += cat(" ", dump(*a));
      return s + ")";
    }
    case ExprKind::Builtin: {
      const auto& x = static_cast<const BuiltinExpr&>(e);
      return x.which == Builtin::ProcId ? "(procid)" : "(nprocs)";
    }
  }
  return "?";
}

std::string dump(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Expr:
      return cat("(expr ", dump(*static_cast<const ExprStmt&>(s).expr), ")");
    case StmtKind::Decl: {
      const auto& x = static_cast<const DeclStmt&>(s);
      std::string r = cat("(decl ", qual_name(x.decl->qual), " ", ty_name(x.decl->ty),
                          " ", x.decl->name);
      if (x.decl->is_array()) r += cat("[", x.decl->array_size, "]");
      if (x.init) r += cat(" ", dump(*x.init));
      return r + ")";
    }
    case StmtKind::Block: {
      const auto& x = static_cast<const BlockStmt&>(s);
      std::string r = "(block";
      for (const auto& st : x.stmts) r += cat(" ", dump(*st));
      return r + ")";
    }
    case StmtKind::If: {
      const auto& x = static_cast<const IfStmt&>(s);
      std::string r = cat("(if ", dump(*x.cond), " ", dump(*x.then_branch));
      if (x.else_branch) r += cat(" ", dump(*x.else_branch));
      return r + ")";
    }
    case StmtKind::While: {
      const auto& x = static_cast<const WhileStmt&>(s);
      return cat("(while ", dump(*x.cond), " ", dump(*x.body), ")");
    }
    case StmtKind::DoWhile: {
      const auto& x = static_cast<const DoWhileStmt&>(s);
      return cat("(do ", dump(*x.body), " ", dump(*x.cond), ")");
    }
    case StmtKind::For: {
      const auto& x = static_cast<const ForStmt&>(s);
      return cat("(for ", x.init ? dump(*x.init) : "()", " ",
                 x.cond ? dump(*x.cond) : "()", " ", x.step ? dump(*x.step) : "()",
                 " ", dump(*x.body), ")");
    }
    case StmtKind::Return: {
      const auto& x = static_cast<const ReturnStmt&>(s);
      return x.value ? cat("(return ", dump(*x.value), ")") : "(return)";
    }
    case StmtKind::Break:
      return "(break)";
    case StmtKind::Continue:
      return "(continue)";
    case StmtKind::Wait:
      return "(wait)";
    case StmtKind::Halt:
      return "(halt)";
    case StmtKind::Spawn:
      return cat("(spawn ", dump(*static_cast<const SpawnStmt&>(s).body), ")");
    case StmtKind::Empty:
      return "()";
  }
  return "?";
}

}  // namespace msc::frontend
